(** Fork-server coordinator: multi-process distribution of the
    exploration frontier (the ROADMAP's scale step past OCaml-domain
    workers, in the style of Manticore's multiprocessing coordinator).

    The coordinator boots the root state on a local engine, serializes
    it, and feeds a queue of {e items} (one snapshot blob each) to N
    worker processes over socketpairs.  Load balancing is pull-based:
    when the queue runs dry and a worker sits idle, the busiest worker
    (by last-reported frontier size) receives a [Steal] and answers by
    checkpointing its whole remaining frontier, which re-enters the
    queue as fresh items.

    Crash tolerance rests on the atomic-handoff discipline of {!Proto}:
    a worker's results leave it only in the one message that retires its
    item, so on any worker death — fd EOF, checksum-torn frame, missed
    heartbeats — the coordinator requeues the item blob it still holds
    and respawns the worker (bounded restarts with backoff; items that
    repeatedly kill workers are dropped after [max_item_attempts]).
    SIGINT (when [handle_sigint]) and wall-clock/path budgets drain
    gracefully: busy workers checkpoint their frontiers, every worker
    reports its telemetry snapshot in [Bye], and the merged report
    accounts for every path explored plus every state left unexplored. *)

module Executor = S2e_core.Executor
module State = S2e_core.State
module Solver = S2e_solver.Solver
module Obs = S2e_obs

(** How to start a worker process. *)
type spawn =
  | Fork of { jobs : int; slice : float; make_engine : unit -> Executor.t }
      (** [Unix.fork] and run {!Worker.serve} in the child.  Only safe
          while no other domain is (or has been) active in this
          process; tests and benchmarks use this. *)
  | Exec of { argv : string array }
      (** Spawn [argv] (typically [s2e_cli worker ...]); the worker end
          of the socketpair is passed via [S2E_DIST_FD]. *)

(** Scheduling events, exposed for logging and fault-injection tests. *)
type event =
  | Spawned of { pid : int; slot : int }
  | Dispatched of { pid : int; item : int }
  | Completed of { pid : int; item : int; paths : int }
  | Checkpointed of { pid : int; item : int; states : int }
  | Crashed of { pid : int; requeued : bool }
  | Respawned of { pid : int; slot : int }

type result = {
  procs : int;
  paths : Proto.path list;
      (** every terminated path, with its test case when [cases] was set *)
  stats : Executor.stats;  (** merged over workers + the local boot *)
  solver_stats : Solver.stats;
  obs : Obs.Metrics.snapshot;  (** merged worker registries + local *)
  steals : int;  (** checkpoints triggered by steal requests *)
  requeues : int;  (** in-flight items recovered from dead workers *)
  restarts : int;  (** worker processes respawned *)
  abandoned : (int * int) list;
      (** items given up after [max_item_attempts]: (item id, attempts) *)
  naks : int;  (** damaged/out-of-order frames NAKed, both directions *)
  retransmits : int;  (** frames re-sent on NAK, both directions *)
  injected : int;  (** transport corruptions injected by the fault plan *)
  unexplored : int;  (** frontier states left when the run stopped *)
  wall_seconds : float;
  trace : Obs.Trace.event list;
      (** merged timeline (empty unless {!Obs.Trace} was enabled):
          worker chunks shipped over heartbeats/Bye, clock-offset
          normalized and pid-stamped, interleaved with the coordinator's
          own events, sorted by timestamp *)
  trace_dropped : int;  (** ring overwrites across all processes *)
}

type item = { it_id : int; it_blob : string; mutable it_attempts : int }
type wstatus = Starting | Idle | Busy of item

type wrk = {
  w_slot : int;
  mutable w_pid : int;
  mutable w_conn : Proto.conn;
  mutable w_status : wstatus;
  mutable w_alive : bool;
  mutable w_shutdown : bool;  (* Shutdown already sent *)
  mutable w_last : float;  (* time of last message received *)
  mutable w_steal : float;  (* time Steal was sent; 0. = none pending *)
  mutable w_nak : float;  (* time of last steal refusal (cooldown) *)
  mutable w_frontier : int;  (* last reported frontier size *)
}

let strip_dist_fd env =
  Array.to_list env
  |> List.filter (fun s ->
         not (String.length s >= 12 && String.sub s 0 12 = "S2E_DIST_FD="))

let spawn_process spawn ~other_fds =
  let parent_fd, child_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match spawn with
  | Fork { jobs; slice; make_engine } -> (
      (* Keep buffered output from being flushed twice. *)
      flush stdout;
      flush stderr;
      match Unix.fork () with
      | 0 ->
          Unix.close parent_fd;
          List.iter
            (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
            other_fds;
          (try Worker.serve ~jobs ~slice ~fd:child_fd ~make_engine ()
           with _ -> ());
          Unix._exit 0
      | pid ->
          Unix.close child_fd;
          (pid, parent_fd))
  | Exec { argv } ->
      Unix.set_close_on_exec parent_fd;
      let env =
        Array.of_list
          (strip_dist_fd (Unix.environment ())
          @ [ "S2E_DIST_FD=" ^ string_of_int (Proto.int_of_fd child_fd) ])
      in
      let pid =
        Unix.create_process_env argv.(0) argv env Unix.stdin Unix.stdout
          Unix.stderr
      in
      Unix.close child_fd;
      (pid, parent_fd)

let explore ?(procs = 2) ?(limits = Executor.no_limits) ?(max_restarts = 8)
    ?(max_item_attempts = 3) ?(heartbeat_timeout = 10.) ?(cases = false)
    ?(handle_sigint = false) ?(on_event = fun (_ : event) -> ()) ~spawn
    ~(make_engine : unit -> Executor.t) ~(boot : Executor.t -> State.t) () =
  if procs < 1 then invalid_arg "Coordinator.explore: procs must be >= 1";
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let t0 = Unix.gettimeofday () in
  let deadline =
    match limits.Executor.max_seconds with
    | Some s -> t0 +. s
    | None -> infinity
  in
  (* Boot locally: path/fork accounting then matches {!Parallel.explore}
     (boot counts one created state on the coordinator side). *)
  let eng = make_engine () in
  let s0 = boot eng in
  let stats = Executor.new_stats () in
  Executor.merge_stats ~into:stats eng.Executor.stats;
  let solver_stats = Solver.new_stats () in
  let paths = ref [] in
  let obs_snaps = ref [] in
  let trace_events = ref [] in
  let trace_dropped = ref 0 in
  (* A worker's chunk carries its own clock readings; the offset between
     the coordinator's receive time and the worker's send time ([now_w])
     normalizes them onto the coordinator's timeline.  Same machine, so
     the offset is dominated by transit/queueing delay — small and
     per-chunk, which keeps long-lived clock drift out too. *)
  let collect_trace w ~now_w chunk =
    if chunk <> "" then
      match
        Obs.Trace.decode_chunk ~pid:w.w_pid
          ~offset:(Unix.gettimeofday () -. now_w)
          chunk
      with
      | evs, dropped ->
          trace_events := List.rev_append evs !trace_events;
          trace_dropped := !trace_dropped + dropped
      | exception Failure _ -> () (* damaged chunk: telemetry, not work *)
  in
  let queue : item Queue.t = Queue.create () in
  let next_item = ref 0 in
  let enqueue_blob blob =
    Queue.push { it_id = !next_item; it_blob = blob; it_attempts = 0 } queue;
    incr next_item
  in
  enqueue_blob (Codec.encode_state s0);
  let steals = ref 0 in
  let requeues = ref 0 in
  let restarts = ref 0 in
  let abandoned = ref [] in
  let draining = ref false in
  let interrupted = ref false in
  let old_sigint =
    if handle_sigint then
      Some
        (Sys.signal Sys.sigint
           (Sys.Signal_handle (fun _ -> interrupted := true)))
    else None
  in
  let workers =
    Array.init procs (fun slot ->
        {
          w_slot = slot;
          w_pid = 0;
          w_conn = Proto.connect Unix.stdin;  (* placeholder until spawn *)
          w_status = Starting;
          w_alive = false;
          w_shutdown = false;
          w_last = 0.;
          w_steal = 0.;
          w_nak = 0.;
          w_frontier = 0;
        })
  in
  let live_fds () =
    Array.fold_left
      (fun acc w -> if w.w_alive then w.w_conn.Proto.fd :: acc else acc)
      [] workers
  in
  let do_spawn slot =
    let pid, fd = spawn_process spawn ~other_fds:(live_fds ()) in
    let w = workers.(slot) in
    w.w_pid <- pid;
    w.w_conn <- Proto.connect fd;
    w.w_status <- Starting;
    w.w_alive <- true;
    w.w_shutdown <- false;
    w.w_last <- Unix.gettimeofday ();
    w.w_steal <- 0.;
    w.w_nak <- 0.;
    w.w_frontier <- 0;
    on_event (Spawned { pid; slot })
  in
  let reap w =
    (try Unix.close w.w_conn.Proto.fd with Unix.Unix_error _ -> ());
    try ignore (Unix.waitpid [] w.w_pid) with Unix.Unix_error _ -> ()
  in
  (* A worker died (EOF, torn frame, heartbeat timeout): recover its
     in-flight item and respawn unless the run is draining anyway. *)
  let crash w =
    if w.w_alive then begin
      w.w_alive <- false;
      (try Unix.kill w.w_pid Sys.sigkill with Unix.Unix_error _ -> ());
      reap w;
      let requeued =
        match w.w_status with
        | Busy it ->
            w.w_status <- Idle;
            it.it_attempts <- it.it_attempts + 1;
            if it.it_attempts > max_item_attempts then begin
              (* Give up on an item that keeps killing workers — but say
                 so: it surfaces in the final report, not a silent drop. *)
              abandoned := (it.it_id, it.it_attempts) :: !abandoned;
              false
            end
            else begin
              Queue.push it queue;
              incr requeues;
              true
            end
        | _ -> false
      in
      on_event (Crashed { pid = w.w_pid; requeued });
      if (not !draining) && !restarts < max_restarts then begin
        incr restarts;
        (* brief backoff so a crash-looping configuration cannot spin *)
        Unix.sleepf (Float.min 0.5 (0.05 *. float_of_int !restarts));
        do_spawn w.w_slot;
        on_event (Respawned { pid = workers.(w.w_slot).w_pid; slot = w.w_slot })
      end
    end
  in
  let handle_msg w (m : Proto.msg) =
    w.w_last <- Unix.gettimeofday ();
    match m with
    | Proto.Hello { version; _ } ->
        if version <> Proto.version then
          failwith "dist: worker protocol version mismatch";
        if w.w_status = Starting then w.w_status <- Idle
    | Proto.Heartbeat { frontier; now; trace; _ } ->
        w.w_frontier <- frontier;
        collect_trace w ~now_w:now trace
    | Proto.Nak _ ->
        w.w_steal <- 0.;
        w.w_nak <- Unix.gettimeofday ()
    | Proto.Result { item; paths = ps; stats = st; solver = sv } ->
        w.w_steal <- 0.;
        w.w_frontier <- 0;
        w.w_status <- Idle;
        paths := List.rev_append ps !paths;
        Executor.merge_stats ~into:stats st;
        Solver.merge_stats ~into:solver_stats sv;
        on_event (Completed { pid = w.w_pid; item; paths = List.length ps })
    | Proto.Checkpoint { item; paths = ps; stats = st; solver = sv; states }
      ->
        let was_steal = w.w_steal > 0. in
        w.w_steal <- 0.;
        w.w_frontier <- 0;
        w.w_status <- Idle;
        paths := List.rev_append ps !paths;
        Executor.merge_stats ~into:stats st;
        Solver.merge_stats ~into:solver_stats sv;
        List.iter enqueue_blob states;
        if was_steal then incr steals;
        on_event
          (Checkpointed { pid = w.w_pid; item; states = List.length states })
    | Proto.Bye { obs; now; trace } ->
        obs_snaps := obs :: !obs_snaps;
        collect_trace w ~now_w:now trace;
        w.w_alive <- false;
        reap w
    | Proto.Work _ | Proto.Steal | Proto.Ping | Proto.Shutdown
    | Proto.Resend _ (* consumed inside recv; never delivered *) ->
        () (* coordinator-only messages; ignore *)
  in
  Array.iteri (fun slot _ -> do_spawn slot) workers;
  let completed_enough () =
    (match limits.Executor.max_completed with
    | Some m -> stats.Executor.states_completed >= m
    | None -> false)
    ||
    match limits.Executor.max_instructions with
    | Some m -> stats.Executor.concrete_instret > m
    | None -> false
  in
  let have_busy () =
    Array.exists
      (fun w ->
        w.w_alive && match w.w_status with Busy _ -> true | _ -> false)
      workers
  in
  let rec loop () =
    let now = Unix.gettimeofday () in
    if (!interrupted || now > deadline || completed_enough ())
       && not !draining
    then begin
      (* Budget hit or Ctrl-C: graceful drain.  Busy workers checkpoint
         their frontiers; nothing new is dispatched. *)
      draining := true;
      Array.iter
        (fun w ->
          if w.w_alive && not w.w_shutdown then begin
            (try
               Proto.send w.w_conn Proto.Shutdown;
               w.w_shutdown <- true
             with Proto.Closed | Codec.Error _ -> crash w)
          end)
        workers
    end;
    let continue =
      if !draining then have_busy ()
      else
        Array.exists (fun w -> w.w_alive) workers
        && ((not (Queue.is_empty queue)) || have_busy ())
    in
    if continue then begin
      if not !draining then begin
        (* Dispatch queued items to idle workers. *)
        Array.iter
          (fun w ->
            if w.w_alive && w.w_status = Idle && not (Queue.is_empty queue)
            then begin
              let it = Queue.pop queue in
              let budget =
                if deadline = infinity then 0.
                else deadline -. Unix.gettimeofday ()
              in
              match
                Proto.send w.w_conn
                  (Proto.Work
                     { item = it.it_id; budget; cases; blob = it.it_blob })
              with
              | () ->
                  w.w_status <- Busy it;
                  on_event (Dispatched { pid = w.w_pid; item = it.it_id })
              | exception (Proto.Closed | Codec.Error _) ->
                  Queue.push it queue;
                  crash w
            end)
          workers;
        (* Rebalance: queue dry + idle workers → steal from the busiest
           worker (largest reported frontier) without a pending steal. *)
        if
          Queue.is_empty queue
          && Array.exists (fun w -> w.w_alive && w.w_status = Idle) workers
        then begin
          let victim = ref None in
          Array.iter
            (fun w ->
              match w.w_status with
              | Busy _
                when w.w_alive && w.w_steal = 0. && now -. w.w_nak >= 0.25 ->
                  (match !victim with
                  | Some v when v.w_frontier >= w.w_frontier -> ()
                  | _ -> victim := Some w)
              | _ -> ())
            workers;
          match !victim with
          | Some w -> (
              try
                Proto.send w.w_conn Proto.Steal;
                w.w_steal <- now
              with Proto.Closed | Codec.Error _ -> crash w)
          | None -> ()
        end
      end;
      (* Steal requests a worker never answered (long solver call) are
         retried after a grace period. *)
      Array.iter
        (fun w -> if w.w_steal > 0. && now -. w.w_steal > 2. then w.w_steal <- 0.)
        workers;
      (* Liveness: a worker silent past the timeout is declared dead. *)
      Array.iter
        (fun w ->
          if w.w_alive && now -. w.w_last > heartbeat_timeout then crash w)
        workers;
      let readable =
        match Unix.select (live_fds ()) [] [] 0.05 with
        | r, _, _ -> r
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
      in
      List.iter
        (fun fd ->
          match
            Array.find_opt
              (fun w -> w.w_alive && w.w_conn.Proto.fd == fd)
              workers
          with
          | None -> ()
          | Some w -> (
              (* [None] means the readable frame was transport-recovery
                 traffic (NAKed, duplicate, or a Resend we served). *)
              match Proto.recv_opt w.w_conn ~timeout:0. with
              | Some m -> handle_msg w m
              | None -> ()
              | exception (Proto.Closed | Codec.Error _) -> crash w))
        readable;
      loop ()
    end
  in
  loop ();
  (* Final collection: every surviving worker checkpoints (already done
     if it was busy) and reports telemetry in Bye. *)
  Array.iter
    (fun w ->
      if w.w_alive then begin
        if not w.w_shutdown then begin
          (try
             Proto.send w.w_conn Proto.Shutdown;
             w.w_shutdown <- true
           with Proto.Closed | Codec.Error _ ->
             w.w_alive <- false;
             reap w)
        end;
        let give_up = Unix.gettimeofday () +. 5. in
        while w.w_alive && Unix.gettimeofday () < give_up do
          match Proto.recv_opt w.w_conn ~timeout:0.2 with
          | Some m -> handle_msg w m
          | None -> ()
          | exception (Proto.Closed | Codec.Error _) ->
              w.w_alive <- false;
              reap w
        done;
        if w.w_alive then begin
          (* unresponsive at shutdown: reclaim it the hard way *)
          w.w_alive <- false;
          (try Unix.kill w.w_pid Sys.sigkill with Unix.Unix_error _ -> ());
          reap w
        end
      end)
    workers;
  (match old_sigint with
  | Some h -> Sys.set_signal Sys.sigint h
  | None -> ());
  let obs =
    Obs.Metrics.merge_snapshots (Obs.Metrics.snapshot () :: !obs_snaps)
  in
  (* The coordinator's own events (boot, transport frames) join the
     worker chunks on the merged timeline. *)
  let local_events, local_dropped = Obs.Trace.drain () in
  let trace =
    List.sort
      (fun (a : Obs.Trace.event) b -> compare a.ev_ts b.ev_ts)
      (List.rev_append !trace_events local_events)
  in
  {
    procs;
    paths = List.rev !paths;
    stats;
    solver_stats;
    obs;
    steals = !steals;
    requeues = !requeues;
    restarts = !restarts;
    abandoned = List.rev !abandoned;
    (* Both directions: the coordinator's own counters are in its local
       snapshot; each worker's arrived with its [Bye] snapshot. *)
    naks = Obs.Metrics.get_int obs "dist.naks";
    retransmits = Obs.Metrics.get_int obs "dist.retransmits";
    injected = Obs.Metrics.get_int obs "fault.proto.corrupt";
    unexplored = Queue.length queue + List.length !abandoned;
    wall_seconds = Unix.gettimeofday () -. t0;
    trace;
    trace_dropped = !trace_dropped + local_dropped;
  }
