(** Elastic coordinator: multi-process and multi-host distribution of
    the exploration frontier (the ROADMAP's scale step past OCaml-domain
    workers, in the style of Manticore's multiprocessing coordinator).

    The coordinator boots the root state on a local engine, serializes
    it, and feeds a queue of {e items} (one snapshot blob each) to its
    workers.  Workers come in two kinds: {e attached} processes it
    spawned itself over socketpairs (the [--procs N] fork-server path),
    and {e remote} workers that dialed the TCP listener mid-run, were
    admitted with a session token, and ship snapshots delta-encoded
    against the run's shared baseline.  Load balancing is pull-based:
    when the queue runs dry and a worker sits idle, the busiest worker
    (by last-reported frontier size) receives a [Steal] and answers by
    checkpointing its whole remaining frontier, which re-enters the
    queue as fresh items.  In elastic (listener) mode, item budgets are
    sized from each worker's observed paths/sec so slow workers return
    their remainder sooner for fast ones to pick up.

    Crash tolerance rests on the atomic-handoff discipline of {!Proto}:
    a worker's results leave it only in the one message that retires its
    item, so on any worker death — fd EOF, checksum-torn frame, an
    expired lease — the coordinator requeues the item blob it still
    holds.  Attached workers are respawned (bounded restarts with
    backoff; items that repeatedly kill workers are dropped after
    [max_item_attempts]).  A remote worker's death is presumed to be
    transport chaos: its item is requeued without charging an attempt,
    its session is kept, and if it rejoins with its token it resumes
    where the queue stands.  When every worker is gone and work remains,
    the coordinator degrades to exploring items on its own boot engine
    (solo mode) rather than aborting — the bottom rung of the
    degradation ladder.  SIGINT (when [handle_sigint]) and
    wall-clock/path budgets drain gracefully: busy workers checkpoint
    their frontiers, every worker reports its telemetry snapshot in
    [Bye], and the merged report accounts for every path explored plus
    every state left unexplored. *)

module Executor = S2e_core.Executor
module Events = S2e_core.Events
module State = S2e_core.State
module Solver = S2e_solver.Solver
module Obs = S2e_obs

(** How to start an attached worker process. *)
type spawn =
  | Fork of { jobs : int; slice : float; make_engine : unit -> Executor.t }
      (** [Unix.fork] and run {!Worker.serve} in the child.  Only safe
          while no other domain is (or has been) active in this
          process; tests and benchmarks use this. *)
  | Exec of { argv : string array }
      (** Spawn [argv] (typically [s2e_cli worker ...]); the worker end
          of the socketpair is passed via [S2E_DIST_FD]. *)

(** Scheduling events, exposed for logging and fault-injection tests. *)
type event =
  | Spawned of { pid : int; slot : int }
  | Dispatched of { pid : int; item : int }
  | Completed of { pid : int; item : int; paths : int }
  | Checkpointed of { pid : int; item : int; states : int }
  | Crashed of { pid : int; requeued : bool }
  | Respawned of { pid : int; slot : int }
  | Joined of { wid : int; addr : string }  (** TCP worker admitted *)
  | Rejoined of { wid : int; pid : int }  (** session resumed after loss *)
  | Left of { wid : int; requeued : bool }
      (** TCP worker gone (EOF or lease expiry); session kept *)
  | Solo of { item : int }  (** coordinator exploring an item itself *)

type result = {
  procs : int;
  paths : Proto.path list;
      (** every terminated path, with its test case when [cases] was set *)
  stats : Executor.stats;  (** merged over workers + the local boot *)
  solver_stats : Solver.stats;
  obs : Obs.Metrics.snapshot;  (** merged worker registries + local *)
  steals : int;  (** checkpoints triggered by steal requests *)
  requeues : int;  (** in-flight items recovered from dead workers *)
  restarts : int;  (** attached worker processes respawned *)
  abandoned : (int * int) list;
      (** items given up after [max_item_attempts]: (item id, attempts) *)
  naks : int;  (** damaged/out-of-order frames NAKed, both directions *)
  retransmits : int;  (** frames re-sent on NAK, both directions *)
  injected : int;  (** transport corruptions injected by the fault plan *)
  unexplored : int;  (** frontier states left when the run stopped *)
  wall_seconds : float;
  joins : int;  (** TCP workers admitted over the run *)
  reconnects : int;  (** sessions resumed via [Rejoin] *)
  leaves : int;  (** TCP connection losses (EOF or expired lease) *)
  solo_paths : int;  (** paths the coordinator explored itself *)
  delta_bytes : int;  (** snapshot bytes actually shipped as deltas *)
  delta_full_bytes : int;
      (** what the same snapshots would have cost un-delta'd *)
  trace : Obs.Trace.event list;
      (** merged timeline (empty unless {!Obs.Trace} was enabled):
          worker chunks shipped over heartbeats/Bye, clock-offset
          normalized and pid-stamped, interleaved with the coordinator's
          own events, sorted by timestamp *)
  trace_dropped : int;  (** ring overwrites across all processes *)
}

type item = { it_id : int; it_blob : string; mutable it_attempts : int }
type wstatus = Starting | Idle | Busy of item

type wkind =
  | Attached of { slot : int }  (* spawned over a socketpair; respawnable *)
  | Remote of { token : string }  (* dialed the listener; can rejoin *)

type wrk = {
  w_id : int;  (* slot for attached workers, wid for remote ones *)
  w_kind : wkind;
  mutable w_pid : int;
  mutable w_conn : Proto.conn option;  (* None until spawned / after loss *)
  mutable w_status : wstatus;
  mutable w_alive : bool;
  mutable w_shutdown : bool;  (* Shutdown already sent *)
  mutable w_last : float;  (* time of last message received *)
  mutable w_steal : float;  (* time Steal was sent; 0. = none pending *)
  mutable w_nak : float;  (* time of last steal refusal (cooldown) *)
  mutable w_frontier : int;  (* last reported frontier size *)
  mutable w_rate : float;  (* EWA of observed paths+states per second *)
  mutable w_dispatched : float;  (* when the current item was sent *)
}

(* A TCP connection that has not completed its Hello/Rejoin handshake
   yet; dropped if it stays silent past its deadline. *)
type pending = { p_conn : Proto.conn; p_addr : string; p_deadline : float }

let strip_dist_fd env =
  Array.to_list env
  |> List.filter (fun s ->
         not (String.length s >= 12 && String.sub s 0 12 = "S2E_DIST_FD="))

let spawn_process spawn ~other_fds =
  let parent_fd, child_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match spawn with
  | Fork { jobs; slice; make_engine } -> (
      (* Keep buffered output from being flushed twice. *)
      flush stdout;
      flush stderr;
      match Unix.fork () with
      | 0 ->
          Unix.close parent_fd;
          List.iter
            (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
            other_fds;
          (try Worker.serve ~jobs ~slice ~fd:child_fd ~make_engine ()
           with _ -> ());
          Unix._exit 0
      | pid ->
          Unix.close child_fd;
          (pid, parent_fd))
  | Exec { argv } ->
      Unix.set_close_on_exec parent_fd;
      let env =
        Array.of_list
          (strip_dist_fd (Unix.environment ())
          @ [ "S2E_DIST_FD=" ^ string_of_int (Proto.int_of_fd child_fd) ])
      in
      let pid =
        Unix.create_process_env argv.(0) argv env Unix.stdin Unix.stdout
          Unix.stderr
      in
      Unix.close child_fd;
      (pid, parent_fd)

(* Session tokens need uniqueness per coordinator, not secrecy against
   an adversary on the socket (the transport is plaintext anyway): they
   fence a rejoining worker from a stale or mistyped wid. *)
let gen_token =
  let mix64 z =
    let open Int64 in
    let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
    logxor z (shift_right_logical z 31)
  in
  let ctr = ref 0 in
  fun () ->
    incr ctr;
    let a = Int64.of_float (Unix.gettimeofday () *. 1e6) in
    let b = Int64.of_int ((Unix.getpid () * 0x01000193) lxor !ctr) in
    Printf.sprintf "%016Lx" (mix64 (Int64.logxor a (mix64 b)))

let explore ?(procs = 2) ?(limits = Executor.no_limits) ?(max_restarts = 8)
    ?(max_item_attempts = 3) ?(heartbeat_timeout = 10.) ?(cases = false)
    ?(handle_sigint = false) ?listener ?(max_workers = 64)
    ?(on_event = fun (_ : event) -> ()) ~spawn
    ~(make_engine : unit -> Executor.t) ~(boot : Executor.t -> State.t) () =
  if procs < 0 then invalid_arg "Coordinator.explore: procs must be >= 0";
  if procs = 0 && listener = None then
    invalid_arg "Coordinator.explore: procs = 0 requires a listener";
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let t0 = Unix.gettimeofday () in
  let deadline =
    match limits.Executor.max_seconds with
    | Some s -> t0 +. s
    | None -> infinity
  in
  (* Boot locally: path/fork accounting then matches {!Parallel.explore}
     (boot counts one created state on the coordinator side). *)
  let eng = make_engine () in
  let s0 = boot eng in
  let stats = Executor.new_stats () in
  Executor.merge_stats ~into:stats eng.Executor.stats;
  let solver_stats = Solver.new_stats () in
  let paths = ref [] in
  let obs_snaps = ref [] in
  let trace_events = ref [] in
  let trace_dropped = ref 0 in
  (* A worker's chunk carries its own clock readings; the offset between
     the coordinator's receive time and the worker's send time ([now_w])
     normalizes them onto the coordinator's timeline.  The offset is
     dominated by transit/queueing delay — small and per-chunk, which
     keeps long-lived clock drift out too. *)
  let collect_trace w ~now_w chunk =
    if chunk <> "" then
      match
        Obs.Trace.decode_chunk ~pid:w.w_pid
          ~offset:(Unix.gettimeofday () -. now_w)
          chunk
      with
      | evs, dropped ->
          trace_events := List.rev_append evs !trace_events;
          trace_dropped := !trace_dropped + dropped
      | exception Failure _ -> () (* damaged chunk: telemetry, not work *)
  in
  let queue : item Queue.t = Queue.create () in
  let next_item = ref 0 in
  let enqueue_blob blob =
    Queue.push { it_id = !next_item; it_blob = blob; it_attempts = 0 } queue;
    incr next_item
  in
  (* The root snapshot doubles as the cluster's shared delta baseline,
     handed to every remote worker in its [Welcome]. *)
  let baseline = Codec.encode_state s0 in
  enqueue_blob baseline;
  let steals = ref 0 in
  let requeues = ref 0 in
  let restarts = ref 0 in
  let abandoned = ref [] in
  let joins = ref 0 in
  let reconnects = ref 0 in
  let leaves = ref 0 in
  let draining = ref false in
  let interrupted = ref false in
  let old_sigint =
    if handle_sigint then
      Some
        (Sys.signal Sys.sigint
           (Sys.Signal_handle (fun _ -> interrupted := true)))
    else None
  in
  let workers : wrk list ref = ref [] in
  let pendings : pending list ref = ref [] in
  let new_wrk ~id ~kind =
    {
      w_id = id;
      w_kind = kind;
      w_pid = 0;
      w_conn = None;
      w_status = Starting;
      w_alive = false;
      w_shutdown = false;
      w_last = 0.;
      w_steal = 0.;
      w_nak = 0.;
      w_frontier = 0;
      w_rate = 0.;
      w_dispatched = 0.;
    }
  in
  for slot = 0 to procs - 1 do
    workers := new_wrk ~id:slot ~kind:(Attached { slot }) :: !workers
  done;
  workers := List.rev !workers;
  let next_wid = ref procs in
  let live_fds () =
    List.fold_left
      (fun acc w ->
        match w.w_conn with
        | Some c when w.w_alive -> c.Proto.fd :: acc
        | _ -> acc)
      [] !workers
  in
  (* Every fd a forked child must NOT inherit: worker sockets, the
     listener, half-shaken handshakes.  An inherited copy would pin a
     peer's connection open past its death and break EOF detection. *)
  let inheritable_fds () =
    let fds = live_fds () in
    let fds =
      match listener with Some lfd -> lfd :: fds | None -> fds
    in
    List.fold_left (fun acc p -> p.p_conn.Proto.fd :: acc) fds !pendings
  in
  let find_slot slot =
    List.find
      (fun w ->
        match w.w_kind with Attached a -> a.slot = slot | Remote _ -> false)
      !workers
  in
  let do_spawn slot =
    let pid, fd = spawn_process spawn ~other_fds:(inheritable_fds ()) in
    let w = find_slot slot in
    w.w_pid <- pid;
    w.w_conn <- Some (Proto.connect fd);
    w.w_status <- Starting;
    w.w_alive <- true;
    w.w_shutdown <- false;
    w.w_last <- Unix.gettimeofday ();
    w.w_steal <- 0.;
    w.w_nak <- 0.;
    w.w_frontier <- 0;
    on_event (Spawned { pid; slot })
  in
  let close_conn w =
    (match w.w_conn with
    | Some c -> ( try Unix.close c.Proto.fd with Unix.Unix_error _ -> ())
    | None -> ());
    w.w_conn <- None
  in
  let reap w =
    close_conn w;
    try ignore (Unix.waitpid [] w.w_pid) with Unix.Unix_error _ -> ()
  in
  (* Recover the in-flight item of a failed worker.  [count_attempt]
     distinguishes process death (evidence the item may be poison) from
     transport loss (chaos; the item is blameless and must not creep
     toward abandonment under disconnect storms). *)
  let requeue_item w ~count_attempt =
    match w.w_status with
    | Busy it ->
        w.w_status <- Idle;
        if count_attempt then begin
          it.it_attempts <- it.it_attempts + 1;
          if it.it_attempts > max_item_attempts then begin
            (* Give up on an item that keeps killing workers — but say
               so: it surfaces in the final report, not a silent drop. *)
            abandoned := (it.it_id, it.it_attempts) :: !abandoned;
            false
          end
          else begin
            Queue.push it queue;
            incr requeues;
            true
          end
        end
        else begin
          Queue.push it queue;
          incr requeues;
          true
        end
    | _ -> false
  in
  (* An attached worker died (EOF, torn frame, expired lease): recover
     its in-flight item and respawn unless the run is draining anyway. *)
  let crash w =
    if w.w_alive then begin
      w.w_alive <- false;
      (try Unix.kill w.w_pid Sys.sigkill with Unix.Unix_error _ -> ());
      reap w;
      let requeued = requeue_item w ~count_attempt:true in
      on_event (Crashed { pid = w.w_pid; requeued });
      match w.w_kind with
      | Attached { slot } when (not !draining) && !restarts < max_restarts ->
          incr restarts;
          (* brief backoff so a crash-looping configuration cannot spin *)
          Unix.sleepf (Float.min 0.5 (0.05 *. float_of_int !restarts));
          do_spawn slot;
          on_event (Respawned { pid = (find_slot slot).w_pid; slot })
      | _ -> ()
    end
  in
  (* A remote worker's connection died (EOF or expired lease): requeue
     without charging an attempt, keep the session for a [Rejoin]. *)
  let leave w =
    if w.w_alive then begin
      w.w_alive <- false;
      close_conn w;
      let requeued = requeue_item w ~count_attempt:false in
      incr leaves;
      on_event (Left { wid = w.w_id; requeued })
    end
  in
  let fail w =
    match w.w_kind with Attached _ -> crash w | Remote _ -> leave w
  in
  (* Expand a possibly-delta checkpoint state back to a full blob before
     it enters the queue (the queue always holds full snapshots — any
     worker, attached or remote, may receive them next). *)
  let expand blob =
    if Codec.is_delta blob then Codec.decode_delta ~baseline blob else blob
  in
  let update_rate w produced =
    let dt = Unix.gettimeofday () -. w.w_dispatched in
    if w.w_dispatched > 0. && dt > 1e-3 then begin
      let inst = float_of_int produced /. dt in
      w.w_rate <-
        (if w.w_rate = 0. then inst else (0.7 *. w.w_rate) +. (0.3 *. inst))
    end
  in
  let handle_msg w (m : Proto.msg) =
    w.w_last <- Unix.gettimeofday ();
    match m with
    | Proto.Hello { version; _ } ->
        if version <> Proto.version then
          failwith "dist: worker protocol version mismatch";
        if w.w_status = Starting then w.w_status <- Idle
    | Proto.Heartbeat { frontier; now; trace; _ } ->
        w.w_frontier <- frontier;
        collect_trace w ~now_w:now trace
    | Proto.Nak _ ->
        w.w_steal <- 0.;
        w.w_nak <- Unix.gettimeofday ()
    | Proto.Result { item; paths = ps; stats = st; solver = sv } ->
        w.w_steal <- 0.;
        w.w_frontier <- 0;
        w.w_status <- Idle;
        update_rate w (List.length ps);
        paths := List.rev_append ps !paths;
        Executor.merge_stats ~into:stats st;
        Solver.merge_stats ~into:solver_stats sv;
        on_event (Completed { pid = w.w_pid; item; paths = List.length ps })
    | Proto.Checkpoint { item; paths = ps; stats = st; solver = sv; states }
      ->
        let was_steal = w.w_steal > 0. in
        w.w_steal <- 0.;
        w.w_frontier <- 0;
        w.w_status <- Idle;
        update_rate w (List.length ps + List.length states);
        paths := List.rev_append ps !paths;
        Executor.merge_stats ~into:stats st;
        Solver.merge_stats ~into:solver_stats sv;
        List.iter
          (fun b ->
            (* A torn delta cannot survive the frame + delta checksums;
               treat a residual decode failure like the state having
               died with the worker. *)
            match expand b with
            | b -> enqueue_blob b
            | exception Codec.Error _ -> ())
          states;
        if was_steal then incr steals;
        on_event
          (Checkpointed { pid = w.w_pid; item; states = List.length states })
    | Proto.Bye { obs; now; trace } ->
        obs_snaps := obs :: !obs_snaps;
        collect_trace w ~now_w:now trace;
        w.w_alive <- false;
        (match w.w_kind with
        | Attached _ -> reap w
        | Remote _ -> close_conn w)
    | Proto.Work _ | Proto.Steal | Proto.Ping | Proto.Shutdown
    | Proto.Welcome _ | Proto.Deny _
    | Proto.Resend _ (* consumed inside recv; never delivered *) ->
        () (* coordinator-only messages; ignore *)
    | Proto.Rejoin _ ->
        () (* handshake traffic; only meaningful on a pending conn *)
  in
  (* ---------------- TCP admission ---------------- *)
  let drop_pending p =
    pendings := List.filter (fun q -> q != p) !pendings;
    try Unix.close p.p_conn.Proto.fd with Unix.Unix_error _ -> ()
  in
  let deny p reason =
    (try Proto.send p.p_conn (Proto.Deny { reason })
     with Proto.Closed | Codec.Error _ -> ());
    drop_pending p
  in
  let live_count () =
    List.fold_left (fun n w -> if w.w_alive then n + 1 else n) 0 !workers
  in
  let welcome conn ~wid ~token =
    Proto.send conn
      (Proto.Welcome { wid; token; lease = heartbeat_timeout; baseline })
  in
  let admit p (m : Proto.msg) =
    match m with
    | Proto.Hello { version; pid; _ } ->
        if version <> Proto.version then deny p "protocol version mismatch"
        else if !draining then deny p "coordinator is draining"
        else if live_count () >= max_workers then deny p "at capacity"
        else begin
          let wid = !next_wid in
          incr next_wid;
          let token = gen_token () in
          let w = new_wrk ~id:wid ~kind:(Remote { token }) in
          w.w_pid <- pid;
          w.w_conn <- Some p.p_conn;
          w.w_status <- Idle;
          w.w_alive <- true;
          w.w_last <- Unix.gettimeofday ();
          match welcome p.p_conn ~wid ~token with
          | () ->
              workers := !workers @ [ w ];
              pendings := List.filter (fun q -> q != p) !pendings;
              incr joins;
              on_event (Joined { wid; addr = p.p_addr })
          | exception (Proto.Closed | Codec.Error _) -> drop_pending p
        end
    | Proto.Rejoin { wid; token; pid; _ } -> (
        let found =
          List.find_opt
            (fun w ->
              w.w_id = wid
              &&
              match w.w_kind with
              | Remote r -> String.equal r.token token
              | Attached _ -> false)
            !workers
        in
        match found with
        | None -> deny p "unknown session"
        | Some w ->
            if !draining then deny p "coordinator is draining"
            else begin
              (* A still-live session means the old connection has not
                 torn down yet (e.g. a stalled worker came back before
                 its lease ran out): retire it first, requeueing
                 whatever it held — the worker discarded its frontier. *)
              if w.w_alive then leave w;
              w.w_pid <- pid;
              w.w_conn <- Some p.p_conn;
              w.w_status <- Idle;
              w.w_alive <- true;
              w.w_shutdown <- false;
              w.w_last <- Unix.gettimeofday ();
              w.w_steal <- 0.;
              w.w_nak <- 0.;
              w.w_frontier <- 0;
              match welcome p.p_conn ~wid ~token with
              | () ->
                  pendings := List.filter (fun q -> q != p) !pendings;
                  incr reconnects;
                  on_event (Rejoined { wid; pid })
              | exception (Proto.Closed | Codec.Error _) ->
                  w.w_alive <- false;
                  w.w_conn <- None;
                  drop_pending p
            end)
    | _ -> deny p "bad handshake"
  in
  let accept_pending lfd =
    match Proto.accept lfd with
    | fd, addr ->
        pendings :=
          {
            p_conn = Proto.connect fd;
            p_addr = addr;
            p_deadline = Unix.gettimeofday () +. 5.;
          }
          :: !pendings
    | exception Unix.Unix_error _ -> ()
  in
  (* ---------------- solo degradation ---------------- *)
  (* When every worker is gone (all remote workers left, attached
     restarts exhausted — or none were ever configured) the coordinator
     explores items on its own boot engine rather than aborting: slower,
     but the run completes.  Slices stay short so the listener keeps
     being polled — a worker joining mid-solo-item takes over the queue
     as soon as it drains. *)
  let solo_item = ref None in
  let solo_paths = ref 0 in
  let solo_done = ref [] in
  Events.reg_state_end eng.Executor.events (fun s ->
      solo_done := s :: !solo_done);
  let solo_mark_e = ref (Worker.copy_exec_stats eng.Executor.stats) in
  let solo_mark_s =
    ref (Worker.copy_solver_stats eng.Executor.solver.Solver.ctx_stats)
  in
  let solo_merge () =
    let cur_e = eng.Executor.stats in
    Executor.merge_stats ~into:stats (Worker.exec_delta ~prev:!solo_mark_e cur_e);
    solo_mark_e := Worker.copy_exec_stats cur_e;
    let cur_s = eng.Executor.solver.Solver.ctx_stats in
    Solver.merge_stats ~into:solver_stats
      (Worker.solver_delta ~prev:!solo_mark_s cur_s);
    solo_mark_s := Worker.copy_solver_stats cur_s
  in
  let solo_drain () =
    let pending = List.rev !solo_done in
    solo_done := [];
    List.iter
      (fun s ->
        List.iter
          (fun p ->
            paths := p :: !paths;
            incr solo_paths)
          (Worker.paths_of_state ~cases s))
      pending
  in
  let solo_start () =
    let it = Queue.pop queue in
    match Codec.decode_state ~base:eng.Executor.base_mem it.it_blob with
    | s ->
        Executor.adopt eng s;
        solo_item := Some it;
        on_event (Solo { item = it.it_id })
    | exception Codec.Error _ ->
        (* own queue, own codec: unreachable short of memory corruption *)
        abandoned := (it.it_id, it.it_attempts) :: !abandoned
  in
  let solo_step it =
    let now = Unix.gettimeofday () in
    let limits =
      {
        Executor.max_instructions = None;
        max_seconds = Some (Float.min 0.05 (deadline -. now));
        max_completed = None;
      }
    in
    Executor.run_loop ~limits eng;
    solo_drain ();
    solo_merge ();
    if eng.Executor.live = [] then begin
      solo_item := None;
      on_event (Completed { pid = 0; item = it.it_id; paths = 0 })
    end
  in
  (* Drain or a rejoined worker: hand the solo frontier back to the
     queue, exactly like a worker checkpoint. *)
  let solo_checkpoint () =
    match !solo_item with
    | None -> ()
    | Some _ ->
        eng.Executor.quiesce ();
        solo_drain ();
        solo_merge ();
        let frontier = eng.Executor.live in
        List.iter (fun s -> enqueue_blob (Codec.encode_state s)) frontier;
        List.iter (Executor.disown eng) frontier;
        solo_item := None
  in
  (* ---------------- scheduling ---------------- *)
  let elastic = listener <> None in
  (* Solo mode waits out a short grace after worker presence is lost (or
     at startup, before anyone has dialed in): a TCP worker needs a
     moment to connect/reconnect, and without the grace a fast workload
     would be fully drained solo before its workers ever join.  A
     handshake in flight extends the wait.  Fork-only runs never had
     this window, and keep grace 0. *)
  let solo_grace = if elastic then 0.35 else 0. in
  let last_presence = ref t0 in
  (* Item budget.  The fork-server path keeps the legacy rule (run to
     the wall-clock deadline) so [--procs N] results stay byte-identical
     to previous releases.  Elastic mode bounds every item to a few
     seconds, scaled by the worker's observed throughput relative to the
     fastest peer: slow workers get shorter leases on an item, so their
     remainder re-enters the queue while fast workers are hungry. *)
  let budget_for w =
    let remaining =
      if deadline = infinity then infinity
      else deadline -. Unix.gettimeofday ()
    in
    if not elastic then if deadline = infinity then 0. else remaining
    else begin
      let best =
        List.fold_left
          (fun acc v -> if v.w_alive then Float.max acc v.w_rate else acc)
          0. !workers
      in
      let b =
        if best > 0. && w.w_rate > 0. then
          Float.max 0.5 (Float.min 4.0 (2.0 *. w.w_rate /. best))
        else 2.0
      in
      if remaining = infinity then b else Float.min b remaining
    end
  in
  List.iter
    (fun w ->
      match w.w_kind with Attached { slot } -> do_spawn slot | Remote _ -> ())
    !workers;
  let completed_enough () =
    (match limits.Executor.max_completed with
    | Some m -> stats.Executor.states_completed >= m
    | None -> false)
    ||
    match limits.Executor.max_instructions with
    | Some m -> stats.Executor.concrete_instret > m
    | None -> false
  in
  let have_busy () =
    List.exists
      (fun w ->
        w.w_alive && match w.w_status with Busy _ -> true | _ -> false)
      !workers
  in
  let send_to w m =
    match w.w_conn with
    | None -> raise Proto.Closed
    | Some c -> Proto.send c m
  in
  let rec loop () =
    let now = Unix.gettimeofday () in
    if (!interrupted || now > deadline || completed_enough ())
       && not !draining
    then begin
      (* Budget hit or Ctrl-C: graceful drain.  Busy workers checkpoint
         their frontiers; nothing new is dispatched. *)
      draining := true;
      solo_checkpoint ();
      List.iter (fun p -> drop_pending p) !pendings;
      List.iter
        (fun w ->
          if w.w_alive && not w.w_shutdown then begin
            try
              send_to w Proto.Shutdown;
              w.w_shutdown <- true
            with Proto.Closed | Codec.Error _ -> fail w
          end)
        !workers
    end;
    let continue =
      if !draining then have_busy ()
      else
        (not (Queue.is_empty queue)) || have_busy () || !solo_item <> None
    in
    if continue then begin
      if not !draining then begin
        (* A worker (re)appeared while the coordinator was exploring
           solo: hand the solo frontier back to the queue so the worker
           takes over. *)
        (match !solo_item with
        | Some _
          when List.exists
                 (fun w -> w.w_alive && w.w_status = Idle)
                 !workers ->
            solo_checkpoint ()
        | _ -> ());
        (* Dispatch queued items to idle workers. *)
        List.iter
          (fun w ->
            if w.w_alive && w.w_status = Idle && not (Queue.is_empty queue)
            then begin
              let it = Queue.pop queue in
              (* Remote workers get the blob delta-encoded against the
                 shared baseline; the queue itself always holds full
                 snapshots. *)
              let blob =
                match w.w_kind with
                | Attached _ -> it.it_blob
                | Remote _ -> (
                    try Codec.encode_delta ~baseline it.it_blob
                    with Codec.Error _ -> it.it_blob)
              in
              match
                send_to w
                  (Proto.Work
                     { item = it.it_id; budget = budget_for w; cases; blob })
              with
              | () ->
                  w.w_status <- Busy it;
                  w.w_dispatched <- Unix.gettimeofday ();
                  on_event (Dispatched { pid = w.w_pid; item = it.it_id })
              | exception (Proto.Closed | Codec.Error _) ->
                  Queue.push it queue;
                  fail w
            end)
          !workers;
        (* Rebalance: queue dry + idle workers → steal from the busiest
           worker (largest reported frontier) without a pending steal. *)
        if
          Queue.is_empty queue
          && List.exists (fun w -> w.w_alive && w.w_status = Idle) !workers
        then begin
          let victim = ref None in
          List.iter
            (fun w ->
              match w.w_status with
              | Busy _
                when w.w_alive && w.w_steal = 0. && now -. w.w_nak >= 0.25 ->
                  (match !victim with
                  | Some v when v.w_frontier >= w.w_frontier -> ()
                  | _ -> victim := Some w)
              | _ -> ())
            !workers;
          match !victim with
          | Some w -> (
              try
                send_to w Proto.Steal;
                w.w_steal <- now
              with Proto.Closed | Codec.Error _ -> fail w)
          | None -> ()
        end;
        (* Degradation ladder, bottom rung: nobody left to delegate to,
           so the coordinator works the queue itself. *)
        if live_count () > 0 then last_presence := now;
        (match !solo_item with
        | Some it -> solo_step it
        | None ->
            if
              live_count () = 0
              && !pendings = []
              && now -. !last_presence >= solo_grace
              && (not (Queue.is_empty queue))
              && now <= deadline
            then solo_start ())
      end;
      (* Steal requests a worker never answered (long solver call) are
         retried after a grace period. *)
      List.iter
        (fun w ->
          if w.w_steal > 0. && now -. w.w_steal > 2. then w.w_steal <- 0.)
        !workers;
      (* Liveness: a worker silent past its lease is declared dead. *)
      List.iter
        (fun w ->
          if w.w_alive && now -. w.w_last > heartbeat_timeout then fail w)
        !workers;
      (* Handshakes that never completed time out. *)
      List.iter
        (fun p -> if now > p.p_deadline then drop_pending p)
        !pendings;
      let select_fds =
        let fds = live_fds () in
        let fds =
          List.fold_left (fun acc p -> p.p_conn.Proto.fd :: acc) fds !pendings
        in
        match listener with
        | Some lfd when not !draining -> lfd :: fds
        | _ -> fds
      in
      let timeout = if !solo_item <> None then 0. else 0.05 in
      let readable =
        match Unix.select select_fds [] [] timeout with
        | r, _, _ -> r
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
      in
      List.iter
        (fun fd ->
          match listener with
          | Some lfd when fd == lfd -> accept_pending lfd
          | _ -> (
              match
                List.find_opt
                  (fun w ->
                    w.w_alive
                    &&
                    match w.w_conn with
                    | Some c -> c.Proto.fd == fd
                    | None -> false)
                  !workers
              with
              | Some w -> (
                  (* [None] means the readable frame was transport-
                     recovery traffic (NAKed, duplicate, or a Resend we
                     served). *)
                  match w.w_conn with
                  | None -> ()
                  | Some c -> (
                      match Proto.recv_opt c ~timeout:0. with
                      | Some m -> handle_msg w m
                      | None -> ()
                      | exception (Proto.Closed | Codec.Error _) -> fail w))
              | None -> (
                  match
                    List.find_opt
                      (fun p -> p.p_conn.Proto.fd == fd)
                      !pendings
                  with
                  | None -> ()
                  | Some p -> (
                      match Proto.recv_opt p.p_conn ~timeout:0. with
                      | Some m -> admit p m
                      | None -> ()
                      | exception (Proto.Closed | Codec.Error _) ->
                          drop_pending p))))
        readable;
      loop ()
    end
  in
  loop ();
  solo_checkpoint ();
  List.iter (fun p -> drop_pending p) !pendings;
  (* Final collection: every surviving worker checkpoints (already done
     if it was busy) and reports telemetry in Bye. *)
  List.iter
    (fun w ->
      if w.w_alive then begin
        (if not w.w_shutdown then
           try
             send_to w Proto.Shutdown;
             w.w_shutdown <- true
           with Proto.Closed | Codec.Error _ -> (
             w.w_alive <- false;
             match w.w_kind with
             | Attached _ -> reap w
             | Remote _ -> close_conn w));
        let give_up = Unix.gettimeofday () +. 5. in
        while w.w_alive && Unix.gettimeofday () < give_up do
          match w.w_conn with
          | None -> w.w_alive <- false
          | Some c -> (
              match Proto.recv_opt c ~timeout:0.2 with
              | Some m -> handle_msg w m
              | None -> ()
              | exception (Proto.Closed | Codec.Error _) -> (
                  w.w_alive <- false;
                  match w.w_kind with
                  | Attached _ -> reap w
                  | Remote _ -> close_conn w))
        done;
        if w.w_alive then begin
          (* unresponsive at shutdown: reclaim it the hard way *)
          w.w_alive <- false;
          match w.w_kind with
          | Attached _ ->
              (try Unix.kill w.w_pid Sys.sigkill with Unix.Unix_error _ -> ());
              reap w
          | Remote _ -> close_conn w
        end
      end)
    !workers;
  (match old_sigint with
  | Some h -> Sys.set_signal Sys.sigint h
  | None -> ());
  let obs =
    Obs.Metrics.merge_snapshots (Obs.Metrics.snapshot () :: !obs_snaps)
  in
  (* The coordinator's own events (boot, transport frames) join the
     worker chunks on the merged timeline. *)
  let local_events, local_dropped = Obs.Trace.drain () in
  let trace =
    List.sort
      (fun (a : Obs.Trace.event) b -> compare a.ev_ts b.ev_ts)
      (List.rev_append !trace_events local_events)
  in
  {
    procs;
    paths = List.rev !paths;
    stats;
    solver_stats;
    obs;
    steals = !steals;
    requeues = !requeues;
    restarts = !restarts;
    abandoned = List.rev !abandoned;
    (* Both directions: the coordinator's own counters are in its local
       snapshot; each worker's arrived with its [Bye] snapshot. *)
    naks = Obs.Metrics.get_int obs "dist.naks";
    retransmits = Obs.Metrics.get_int obs "dist.retransmits";
    injected = Obs.Metrics.get_int obs "fault.proto.corrupt";
    unexplored = Queue.length queue + List.length !abandoned;
    wall_seconds = Unix.gettimeofday () -. t0;
    joins = !joins;
    reconnects = !reconnects;
    leaves = !leaves;
    solo_paths = !solo_paths;
    delta_bytes = Obs.Metrics.get_int obs "codec.delta_bytes";
    delta_full_bytes = Obs.Metrics.get_int obs "codec.delta_full_bytes";
    trace;
    trace_dropped = !trace_dropped + local_dropped;
  }
