(** Seeded, deterministic fault injection.

    The paper's flagship use case is making the {e environment}
    misbehave on purpose — symbolic device returns and injected
    kernel-API failures (sections 1 and 6.1).  This module generalizes
    that into a process-global chaos layer: a declarative {e fault plan}
    names injection sites across the platform's three trust boundaries
    (guest hardware, the solver, the dist transport) and attaches a
    firing probability to each.  Sites are probed with {!fire} on their
    hot paths; everything else in the platform stays oblivious.

    Determinism: each site draws from its own splitmix64 stream derived
    from [seed ^ site], so two runs with the same plan, seed and
    schedule inject identical fault sequences, and adding a rule for one
    site never perturbs another site's stream.  Draw indices are
    allocated with an atomic counter, so concurrent domains never tear
    the stream (the {e assignment} of draws to domains then follows the
    schedule, which is the best any injector can do under parallelism).

    With no plan installed, {!fire} is a single load-and-branch. *)

(** An injection site.  Naming is [boundary.effect]. *)
type site =
  | Dev_read  (** device read returns the error pattern (0xEE) *)
  | Dma_drop  (** a DMA completion is silently dropped *)
  | Irq_spurious  (** a spurious timer IRQ is raised *)
  | Solver_unknown  (** a SAT-core query is forced to [Unknown] *)
  | Solver_latency  (** artificial latency is requested for a query *)
  | Proto_corrupt  (** a transport frame has one payload byte flipped *)
  | Proto_delay  (** a worker heartbeat is suppressed for one period *)
  | Proto_disconnect
      (** the worker's coordinator connection is severed abruptly (no
          goodbye): a TCP worker reconnects and rejoins, a
          socketpair-attached worker dies and is respawned *)
  | Proto_stall
      (** the worker freezes past its lease — a blocking sleep long
          enough that the coordinator presumes it dead and requeues its
          item; the stalled worker then discovers the loss on its next
          send and recovers like a disconnect *)

val all_sites : site list
val site_name : site -> string
(** ["dev.read"], ["dma.drop"], ["irq.spurious"], ["solver.unknown"],
    ["solver.latency"], ["proto.corrupt"], ["proto.delay"],
    ["proto.disconnect"], ["proto.stall"]. *)

type rule = {
  r_site : site;
  r_prob : float;  (** firing probability per probe, in [0, 1] *)
  r_cap : int option;  (** stop firing after this many injections *)
}

type plan = rule list

val parse_plan : string -> (plan, string) result
(** Parse the [--fault-plan] grammar: comma-separated
    [site=kind:prob[#cap]] rules, e.g.
    ["dev.read=err:0.05,dma=drop:0.01,solver=unknown:0.02,proto=corrupt:0.03"].
    Site/kind pairs: [dev.read=err], [dma=drop], [irq=spurious],
    [solver=unknown], [solver=latency], [proto=corrupt], [proto=delay],
    [proto=disconnect], [proto=stall].
    The empty string parses to the empty plan. *)

val plan_to_string : plan -> string
(** Canonical text form; [parse_plan] roundtrips it. *)

val install : ?seed:int -> plan -> unit
(** Arm the injector process-wide.  Re-installing replaces the previous
    plan and zeroes per-site fire counts (registry counters, being
    monotonic, are not reset).  [seed] defaults to 1. *)

val disarm : unit -> unit
(** Remove the plan; every subsequent {!fire} returns [false]. *)

val armed : unit -> bool

val fire : site -> bool
(** Probe the site: [true] means inject a fault now.  Always [false]
    when disarmed or the site has no rule; each [true] also increments
    the site's [fault.<site>] registry counter. *)

val count : site -> int
(** Faults injected at the site since the last {!install}. *)

val counts : unit -> (string * int) list
(** [(site_name, count)] for every site with a nonzero count. *)

val total : unit -> int
(** Sum of all per-site counts. *)
