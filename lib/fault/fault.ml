(* Seeded, deterministic fault injection.  See fault.mli for the model. *)

module Obs = S2e_obs

type site =
  | Dev_read
  | Dma_drop
  | Irq_spurious
  | Solver_unknown
  | Solver_latency
  | Proto_corrupt
  | Proto_delay
  | Proto_disconnect
  | Proto_stall

let all_sites =
  [
    Dev_read;
    Dma_drop;
    Irq_spurious;
    Solver_unknown;
    Solver_latency;
    Proto_corrupt;
    Proto_delay;
    Proto_disconnect;
    Proto_stall;
  ]

let site_index = function
  | Dev_read -> 0
  | Dma_drop -> 1
  | Irq_spurious -> 2
  | Solver_unknown -> 3
  | Solver_latency -> 4
  | Proto_corrupt -> 5
  | Proto_delay -> 6
  | Proto_disconnect -> 7
  | Proto_stall -> 8

let num_sites = 9

let site_name = function
  | Dev_read -> "dev.read"
  | Dma_drop -> "dma.drop"
  | Irq_spurious -> "irq.spurious"
  | Solver_unknown -> "solver.unknown"
  | Solver_latency -> "solver.latency"
  | Proto_corrupt -> "proto.corrupt"
  | Proto_delay -> "proto.delay"
  | Proto_disconnect -> "proto.disconnect"
  | Proto_stall -> "proto.stall"

(* Registered at load time in every process linking this library, so
   cross-process snapshot merging always knows the counter kind even in
   processes that never fired a fault. *)
let m_fired =
  let a = Array.make num_sites (Obs.Metrics.counter "fault.dev.read") in
  List.iter
    (fun s ->
      a.(site_index s) <- Obs.Metrics.counter ("fault." ^ site_name s))
    all_sites;
  a

(* Interned trace names, same layout as [m_fired]. *)
let t_fired =
  let a = Array.make num_sites (Obs.Trace.intern "fault.dev.read") in
  List.iter
    (fun s -> a.(site_index s) <- Obs.Trace.intern ("fault." ^ site_name s))
    all_sites;
  a

type rule = { r_site : site; r_prob : float; r_cap : int option }
type plan = rule list

(* ------------------------------------------------------------------ *)
(* Plan grammar: site=kind:prob[#cap], comma-separated                  *)
(* ------------------------------------------------------------------ *)

(* The CLI grammar names sites as key=kind pairs; the pair maps onto one
   internal site. *)
let grammar =
  [
    (("dev.read", "err"), Dev_read);
    (("dma", "drop"), Dma_drop);
    (("irq", "spurious"), Irq_spurious);
    (("solver", "unknown"), Solver_unknown);
    (("solver", "latency"), Solver_latency);
    (("proto", "corrupt"), Proto_corrupt);
    (("proto", "delay"), Proto_delay);
    (("proto", "disconnect"), Proto_disconnect);
    (("proto", "stall"), Proto_stall);
  ]

let grammar_pair site = fst (List.find (fun (_, s) -> s = site) grammar)

let rule_to_string r =
  let key, kind = grammar_pair r.r_site in
  Printf.sprintf "%s=%s:%g%s" key kind r.r_prob
    (match r.r_cap with None -> "" | Some c -> Printf.sprintf "#%d" c)

let plan_to_string plan = String.concat "," (List.map rule_to_string plan)

let parse_rule entry =
  let ( let* ) = Result.bind in
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let* key, rest =
    match String.index_opt entry '=' with
    | Some i ->
        Ok
          ( String.sub entry 0 i,
            String.sub entry (i + 1) (String.length entry - i - 1) )
    | None -> fail "rule %S: expected site=kind:prob" entry
  in
  let* kind, rest =
    match String.index_opt rest ':' with
    | Some i ->
        Ok
          ( String.sub rest 0 i,
            String.sub rest (i + 1) (String.length rest - i - 1) )
    | None -> fail "rule %S: expected a ':probability'" entry
  in
  let* r_site =
    match List.assoc_opt (key, kind) grammar with
    | Some s -> Ok s
    | None ->
        fail "rule %S: unknown site %s=%s (have: %s)" entry key kind
          (String.concat ", "
             (List.map (fun ((k, v), _) -> k ^ "=" ^ v) grammar))
  in
  let* prob_str, r_cap =
    match String.index_opt rest '#' with
    | None -> Ok (rest, None)
    | Some i -> (
        let c = String.sub rest (i + 1) (String.length rest - i - 1) in
        match int_of_string_opt c with
        | Some n when n >= 1 -> Ok (String.sub rest 0 i, Some n)
        | _ -> fail "rule %S: cap %S is not a positive integer" entry c)
  in
  let* r_prob =
    match float_of_string_opt prob_str with
    | Some p when p >= 0. && p <= 1. -> Ok p
    | Some _ -> fail "rule %S: probability must be in [0, 1]" entry
    | None -> fail "rule %S: probability %S is not a number" entry prob_str
  in
  Ok { r_site; r_prob; r_cap }

let parse_plan s =
  let entries =
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.filter (fun e -> e <> "")
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | e :: rest -> (
        match parse_rule e with
        | Ok r -> go (r :: acc) rest
        | Error _ as err -> err)
  in
  go [] entries

(* ------------------------------------------------------------------ *)
(* Armed state                                                         *)
(* ------------------------------------------------------------------ *)

type slot = {
  s_prob : float;
  s_cap : int;  (* max_int when uncapped *)
  s_seq : int Atomic.t;  (* next draw index in this site's stream *)
  s_fired : int Atomic.t;
  s_stream : int64;  (* seed ^ site mix constant *)
}

(* [None] per site = no rule (never fires). *)
let slots : slot option array ref = ref (Array.make num_sites None)
let is_armed = ref false

let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

(* splitmix64 output for draw [n] of the site stream: uniform in [0,1). *)
let draw stream n =
  let golden = 0x9e3779b97f4a7c15L in
  let z = mix64 (Int64.add stream (Int64.mul (Int64.of_int (n + 1)) golden)) in
  Int64.to_float (Int64.shift_right_logical z 11) /. 9007199254740992.

let install ?(seed = 1) plan =
  let arr = Array.make num_sites None in
  List.iter
    (fun r ->
      arr.(site_index r.r_site) <-
        Some
          {
            s_prob = r.r_prob;
            s_cap = (match r.r_cap with None -> max_int | Some c -> c);
            s_seq = Atomic.make 0;
            s_fired = Atomic.make 0;
            s_stream =
              mix64
                (Int64.logxor (Int64.of_int seed)
                   (Int64.of_int ((site_index r.r_site + 1) * 0x1000193)));
          })
    plan;
  slots := arr;
  is_armed := plan <> []

let disarm () =
  slots := Array.make num_sites None;
  is_armed := false

let armed () = !is_armed

let fire site =
  if not !is_armed then false
  else
    match !slots.(site_index site) with
    | None -> false
    | Some sl ->
        sl.s_prob > 0.
        && draw sl.s_stream (Atomic.fetch_and_add sl.s_seq 1) < sl.s_prob
        && Atomic.fetch_and_add sl.s_fired 1 < sl.s_cap
        &&
        (Obs.Metrics.incr m_fired.(site_index site);
         if Obs.Trace.enabled () then
           Obs.Trace.instant t_fired.(site_index site);
         true)

let count site =
  match !slots.(site_index site) with
  | None -> 0
  | Some sl -> min (Atomic.get sl.s_fired) sl.s_cap

let counts () =
  List.filter_map
    (fun s ->
      let c = count s in
      if c > 0 then Some (site_name s, c) else None)
    all_sites

let total () = List.fold_left (fun acc (_, c) -> acc + c) 0 (counts ())
