(** Bitfield-theory expression simplifier (S2E paper, section 5).

    The dynamic translator produces many bit-level operations (flag
    extraction, masking, shifting).  This simplifier implements the two
    passes the paper describes:

    - a bottom-up {e known-bits} analysis: for every sub-expression compute
      which bits are statically known and their values; if all bits are
      known the sub-expression is replaced by a constant;
    - a top-down {e demanded-bits} analysis: propagate which bits of a
      sub-expression are actually observed by its context; operations that
      only affect ignored bits are removed. *)

open Expr

(** Known-bits lattice element: [kmask] has a 1 for every bit whose value is
    statically known; [kval] holds those bits' values (zero elsewhere). *)
type bits = { kmask : int64; kval : int64 }

let unknown = { kmask = 0L; kval = 0L }

let all_known w v = { kmask = mask w; kval = norm v w }

let is_fully_known w b = b.kmask = mask w

(* Known-bits transfer functions.  Conservative: returning [unknown] is
   always sound. *)
let known_and w a b =
  (* A bit is known if it is known-zero on either side, or known on both. *)
  let zero_a = Int64.logand a.kmask (Int64.lognot a.kval) in
  let zero_b = Int64.logand b.kmask (Int64.lognot b.kval) in
  let both = Int64.logand a.kmask b.kmask in
  let kmask =
    norm (Int64.logor (Int64.logor zero_a zero_b) both) w
  in
  let kval = Int64.logand (Int64.logand a.kval b.kval) kmask in
  { kmask; kval }

let known_or w a b =
  let one_a = Int64.logand a.kmask a.kval in
  let one_b = Int64.logand b.kmask b.kval in
  let both = Int64.logand a.kmask b.kmask in
  let kmask = norm (Int64.logor (Int64.logor one_a one_b) both) w in
  let kval = Int64.logand (Int64.logor a.kval b.kval) kmask in
  { kmask; kval }

let known_xor w a b =
  let kmask = norm (Int64.logand a.kmask b.kmask) w in
  let kval = Int64.logand (Int64.logxor a.kval b.kval) kmask in
  { kmask; kval }

let known_not w a =
  { kmask = a.kmask; kval = Int64.logand (norm (Int64.lognot a.kval) w) a.kmask }

let known_shl w a s =
  {
    kmask =
      norm (Int64.logor (Int64.shift_left a.kmask s) (mask s)) w;
    kval = norm (Int64.shift_left a.kval s) w;
  }

let known_lshr w a s =
  (* The vacated high bits become known zeros. *)
  let high_zeros =
    Int64.logand (mask w)
      (Int64.lognot (Int64.shift_right_logical (mask w) s))
  in
  {
    kmask = Int64.logor (Int64.shift_right_logical a.kmask s) high_zeros;
    kval = Int64.shift_right_logical a.kval s;
  }

(* Memo tables, keyed by interned node id.  Node ids are process-unique
   and never reused, and both analyses are pure per-node functions, so a
   hit can never be stale.  Tables are domain-local (parallel workers
   never contend) and bounded: past [memo_cap] live entries they are
   reset — cheap amnesia beats an unbounded table on long runs. *)
let memo_cap = 1 lsl 17

let kb_memo : (int, bits) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 1024)

let simplify_memo : (int, Expr.t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 1024)

(* Toggled off by [simplify_uncached] so differential tests exercise a
   genuinely memo-free path. *)
let memo_enabled = Domain.DLS.new_key (fun () -> true)

let memo_store tbl key v =
  if Hashtbl.length tbl >= memo_cap then Hashtbl.reset tbl;
  Hashtbl.replace tbl key v

(* Memoizing a node smaller than this costs more in table traffic than
   the recomputation it saves; the cached [Expr.size] makes the gate
   O(1).  Translated guest code produces both shapes: tiny flag tests
   (skip the memo) and deep address-arithmetic chains (where the memo
   kills [replace_known]'s quadratic behaviour). *)
let memo_min_size = 16

(* Bottom-up known-bits computation.  [replace_known] queries it at every
   level of its descent, so without the memo the overall pass is
   quadratic in expression depth. *)
let rec known_bits e : bits =
  match e with
  | Const _ | Var _ | Cmp _ -> known_bits_raw e
  | _ ->
      if size e >= memo_min_size && Domain.DLS.get memo_enabled then begin
        let tbl = Domain.DLS.get kb_memo in
        match Hashtbl.find_opt tbl (node_id e) with
        | Some b -> b
        | None ->
            let b = known_bits_raw e in
            memo_store tbl (node_id e) b;
            b
      end
      else known_bits_raw e

and known_bits_raw e : bits =
  let w = width e in
  match e with
  | Const { value; _ } -> all_known w value
  | Var _ -> unknown
  | Unop { op = Bnot; arg; _ } -> known_not w (known_bits arg)
  | Unop { op = Neg; _ } -> unknown
  | Binop { op; lhs; rhs; _ } -> (
      let a = known_bits lhs and b = known_bits rhs in
      match op with
      | And -> known_and w a b
      | Or -> known_or w a b
      | Xor -> known_xor w a b
      | Shl -> (
          match to_const rhs with
          | Some s -> known_shl w a (Int64.to_int s mod w)
          | None -> unknown)
      | Lshr -> (
          match to_const rhs with
          | Some s -> known_lshr w a (Int64.to_int s mod w)
          | None -> unknown)
      | Add | Sub | Mul | Udiv | Urem | Ashr -> unknown)
  | Cmp _ -> unknown
  | Ite { then_; else_; _ } ->
      let a = known_bits then_ and b = known_bits else_ in
      let kmask =
        Int64.logand (Int64.logand a.kmask b.kmask)
          (Int64.lognot (Int64.logxor a.kval b.kval))
      in
      { kmask; kval = Int64.logand a.kval kmask }
  | Extract { hi = _; lo; arg; _ } ->
      let a = known_bits arg in
      {
        kmask = norm (Int64.shift_right_logical a.kmask lo) w;
        kval = norm (Int64.shift_right_logical a.kval lo) w;
      }
  | Concat { high; low; _ } ->
      let a = known_bits high and b = known_bits low in
      let lw = width low in
      {
        kmask = Int64.logor (Int64.shift_left a.kmask lw) b.kmask;
        kval = Int64.logor (Int64.shift_left a.kval lw) b.kval;
      }
  | Zext { arg; _ } ->
      let a = known_bits arg in
      let aw = width arg in
      let high_zeros = Int64.logand (mask w) (Int64.lognot (mask aw)) in
      { kmask = Int64.logor a.kmask high_zeros; kval = a.kval }
  | Sext { arg; _ } ->
      let a = known_bits arg in
      { kmask = Int64.logand a.kmask (mask (width arg)); kval = a.kval }

(* Ite rewriting beyond the smart constructor's constant-condition and
   equal-arms folds.  Inside the then-arm the condition is known true and
   inside the else-arm known false, so a nested ite on the same condition
   (or its negation) collapses to the matching arm:
   ite c (ite c a b) d = ite c a d, and dually on the else side.  The
   state-merging join nests exactly this shape — each join wraps cells in
   ite(guard, ...), and re-merging along the same guard re-wraps them —
   so the collapse keeps merged expressions linear instead of exponential
   in the number of joins. *)
let rec ite_arm cond ~in_then e =
  match e with
  | Ite { cond = c; then_; else_; _ } when equal c cond ->
      ite_arm cond ~in_then (if in_then then then_ else else_)
  | Ite { cond = c; then_; else_; _ } when equal c (log_not cond) ->
      ite_arm cond ~in_then (if in_then then else_ else then_)
  | _ -> e

let ite_s cond then_ else_ =
  ite cond
    (ite_arm cond ~in_then:true then_)
    (ite_arm cond ~in_then:false else_)

(* Top-down demanded-bits rewriting.  [demanded] is the set of bits of [e]
   the context observes; bits outside it may take any value. *)
let rec demand e demanded =
  let w = width e in
  let demanded = Int64.logand demanded (mask w) in
  if demanded = 0L then const ~width:w 0L
  else
    match e with
    | Const _ | Var _ | Cmp _ -> e
    | Unop { op = Bnot; arg; _ } -> bnot (demand arg demanded)
    | Unop { op = Neg; _ } -> e
    | Binop { op = And; lhs; rhs; _ } -> (
        let kb_l = known_bits lhs and kb_r = known_bits rhs in
        (* Drop a mask operand that is known-one on every demanded bit. *)
        let ones b = Int64.logand b.kmask b.kval in
        if Int64.logand demanded (Int64.lognot (ones kb_r)) = 0L then
          demand lhs demanded
        else if Int64.logand demanded (Int64.lognot (ones kb_l)) = 0L then
          demand rhs demanded
        else
          (* Bits known-zero on one side are not demanded of the other. *)
          let zeros b = Int64.logand b.kmask (Int64.lognot b.kval) in
          band
            (demand lhs (Int64.logand demanded (Int64.lognot (zeros kb_r))))
            (demand rhs (Int64.logand demanded (Int64.lognot (zeros kb_l)))))
    | Binop { op = Or; lhs; rhs; _ } -> (
        let kb_l = known_bits lhs and kb_r = known_bits rhs in
        let zeros b = Int64.logand b.kmask (Int64.lognot b.kval) in
        if Int64.logand demanded (Int64.lognot (zeros kb_r)) = 0L then
          demand lhs demanded
        else if Int64.logand demanded (Int64.lognot (zeros kb_l)) = 0L then
          demand rhs demanded
        else
          (* Bits known-one on one side dominate the other's contribution. *)
          let ones b = Int64.logand b.kmask b.kval in
          bor
            (demand lhs (Int64.logand demanded (Int64.lognot (ones kb_r))))
            (demand rhs (Int64.logand demanded (Int64.lognot (ones kb_l)))))
    | Binop { op = Xor; lhs; rhs; _ } ->
        bxor (demand lhs demanded) (demand rhs demanded)
    | Binop { op = Shl; lhs; rhs; _ } -> (
        match to_const rhs with
        | Some s ->
            let s = Int64.to_int s mod w in
            shl (demand lhs (Int64.shift_right_logical demanded s)) rhs
        | None -> e)
    | Binop { op = Lshr; lhs; rhs; _ } -> (
        match to_const rhs with
        | Some s ->
            let s = Int64.to_int s mod w in
            lshr (demand lhs (norm (Int64.shift_left demanded s) w)) rhs
        | None -> e)
    | Binop { op = Add | Sub; _ } ->
        (* Addition only propagates carries upward: bits above the highest
           demanded bit never influence demanded bits below them, so the
           operands only need bits up to the highest demanded one. *)
        let rec highest_bit i = if i < 0 then -1
          else if Int64.logand demanded (Int64.shift_left 1L i) <> 0L then i
          else highest_bit (i - 1) in
        let hb = highest_bit (w - 1) in
        if hb < 0 then const ~width:w 0L
        else
          let low_mask = mask (hb + 1) in
          (match e with
          | Binop { op; lhs; rhs; _ } ->
              binop op (demand lhs low_mask) (demand rhs low_mask)
          | _ -> e)
    | Binop _ -> e
    | Ite { cond; then_; else_; _ } ->
        ite_s cond (demand then_ demanded) (demand else_ demanded)
    | Extract { hi; lo; arg; _ } ->
        extract ~hi ~lo (demand arg (norm (Int64.shift_left demanded lo) (width arg)))
    | Concat { high; low; _ } ->
        let lw = width low in
        concat
          ~high:(demand high (Int64.shift_right_logical demanded lw))
          ~low:(demand low (Int64.logand demanded (mask lw)))
    | Zext { arg; width = w'; _ } ->
        zext ~width:w' (demand arg demanded)
    | Sext _ -> e

(* Full simplification: demanded-bits rewrite with everything demanded,
   then constant-replacement of fully-known sub-expressions. *)
let rec replace_known e =
  let w = width e in
  let kb = known_bits e in
  if is_fully_known w kb then const ~width:w kb.kval
  else
    match e with
    | Const _ | Var _ -> e
    | Unop { op; arg; _ } -> unop op (replace_known arg)
    | Binop { op; lhs; rhs; _ } ->
        binop op (replace_known lhs) (replace_known rhs)
    | Cmp { op; lhs; rhs; _ } ->
        let lhs = replace_known lhs and rhs = replace_known rhs in
        (* Use known bits to decide comparisons without a solver. *)
        let ka = known_bits lhs and kb' = known_bits rhs in
        let decided =
          match op with
          | Eq ->
              let both = Int64.logand ka.kmask kb'.kmask in
              if
                Int64.logand (Int64.logxor ka.kval kb'.kval) both <> 0L
              then Some false
              else None
          | Ult | Ule | Slt | Sle -> None
        in
        (match decided with Some b -> of_bool b | None -> cmp op lhs rhs)
    | Ite { cond; then_; else_; _ } ->
        ite_s (replace_known cond) (replace_known then_) (replace_known else_)
    | Extract { hi; lo; arg; _ } -> extract ~hi ~lo (replace_known arg)
    | Concat { high; low; _ } ->
        concat ~high:(replace_known high) ~low:(replace_known low)
    | Zext { arg; width = w'; _ } -> zext ~width:w' (replace_known arg)
    | Sext { arg; width = w'; _ } -> sext ~width:w' (replace_known arg)

let simplify_raw e =
  let e = demand e (mask (width e)) in
  replace_known e

(* Memoized by node id: re-simplifying a query's shared constraint prefix
   (the common case — the solver simplifies the full constraint list per
   query) becomes a table hit per constraint.  Tiny constraints skip the
   table: re-simplifying them outright is cheaper than the traffic. *)
let simplify e =
  match e with
  | Const _ | Var _ -> e
  | _ when size e < memo_min_size -> simplify_raw e
  | _ -> (
      let tbl = Domain.DLS.get simplify_memo in
      match Hashtbl.find_opt tbl (node_id e) with
      | Some e' -> e'
      | None ->
          let e' = simplify_raw e in
          memo_store tbl (node_id e) e';
          e')

let simplify_uncached e =
  Domain.DLS.set memo_enabled false;
  Fun.protect
    ~finally:(fun () -> Domain.DLS.set memo_enabled true)
    (fun () -> simplify_raw e)
