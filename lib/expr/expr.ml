(** Bitvector expressions for the symbolic execution engine.

    Expressions model guest machine words of widths 1, 8, 16 and 32 bits.
    Construction goes through smart constructors which perform constant
    folding and local algebraic simplification, so that the common case of
    fully-concrete computation never allocates deep trees.  The deeper
    bitfield-theory simplifier from the paper (known-bits / demanded-bits
    propagation, S2E paper section 5) lives in {!Simplifier}. *)

type unop =
  | Neg  (** two's-complement negation *)
  | Bnot (** bitwise complement *)

type binop =
  | Add
  | Sub
  | Mul
  | Udiv (** unsigned division; division by zero yields all-ones, as SMT-LIB *)
  | Urem (** unsigned remainder; remainder by zero yields the dividend *)
  | And
  | Or
  | Xor
  | Shl  (** left shift, shift amount taken modulo width *)
  | Lshr (** logical right shift *)
  | Ashr (** arithmetic right shift *)

type cmpop =
  | Eq
  | Ult
  | Ule
  | Slt
  | Sle

type t =
  | Const of { value : int64; width : int }
  | Var of { id : int; name : string; width : int }
  | Unop of { op : unop; arg : t; width : int }
  | Binop of { op : binop; lhs : t; rhs : t; width : int }
  | Cmp of { op : cmpop; lhs : t; rhs : t } (* width 1 *)
  | Ite of { cond : t; then_ : t; else_ : t; width : int }
  | Extract of { hi : int; lo : int; arg : t } (* width = hi - lo + 1 *)
  | Concat of { high : t; low : t; width : int }
  | Zext of { arg : t; width : int }
  | Sext of { arg : t; width : int }

let width = function
  | Const { width; _ } | Var { width; _ } | Unop { width; _ }
  | Binop { width; _ } | Ite { width; _ } | Concat { width; _ }
  | Zext { width; _ } | Sext { width; _ } ->
      width
  | Cmp _ -> 1
  | Extract { hi; lo; _ } -> hi - lo + 1

let mask w =
  if w >= 64 then -1L else Int64.sub (Int64.shift_left 1L w) 1L

(* Sign-extend the low [w] bits of [v] to a full int64. *)
let sext64 v w =
  if w >= 64 then v
  else
    let shift = 64 - w in
    Int64.shift_right (Int64.shift_left v shift) shift

let norm v w = Int64.logand v (mask w)

let const ?(width = 32) value = Const { value = norm value width; width }
let bool_t = const ~width:1 1L
let bool_f = const ~width:1 0L
let of_bool b = if b then bool_t else bool_f

let is_const = function Const _ -> true | _ -> false

let to_const = function Const { value; _ } -> Some value | _ -> None

(* Atomic so parallel exploration workers can mint variables
   concurrently without duplicating ids. *)
let var_counter = Atomic.make 0

let fresh_var ?(width = 32) name =
  Var { id = Atomic.fetch_and_add var_counter 1 + 1; name; width }

(* Raise the counter to at least [n] so variables decoded from another
   process never collide with locally minted ones. *)
let rec bump_var_counter n =
  let cur = Atomic.get var_counter in
  if cur < n && not (Atomic.compare_and_set var_counter cur n) then
    bump_var_counter n

(* Structural equality; physical equality is checked first as a fast path. *)
let rec equal a b =
  a == b
  ||
  match a, b with
  | Const a, Const b -> a.value = b.value && a.width = b.width
  | Var a, Var b -> a.id = b.id
  | Unop a, Unop b -> a.op = b.op && equal a.arg b.arg
  | Binop a, Binop b -> a.op = b.op && equal a.lhs b.lhs && equal a.rhs b.rhs
  | Cmp a, Cmp b -> a.op = b.op && equal a.lhs b.lhs && equal a.rhs b.rhs
  | Ite a, Ite b ->
      equal a.cond b.cond && equal a.then_ b.then_ && equal a.else_ b.else_
  | Extract a, Extract b -> a.hi = b.hi && a.lo = b.lo && equal a.arg b.arg
  | Concat a, Concat b -> equal a.high b.high && equal a.low b.low
  | Zext a, Zext b -> a.width = b.width && equal a.arg b.arg
  | Sext a, Sext b -> a.width = b.width && equal a.arg b.arg
  | ( ( Const _ | Var _ | Unop _ | Binop _ | Cmp _ | Ite _ | Extract _
      | Concat _ | Zext _ | Sext _ ),
      _ ) ->
      false

let eval_unop op v w =
  match op with
  | Neg -> norm (Int64.neg v) w
  | Bnot -> norm (Int64.lognot v) w

let eval_binop op a b w =
  let m = mask w in
  match op with
  | Add -> norm (Int64.add a b) w
  | Sub -> norm (Int64.sub a b) w
  | Mul -> norm (Int64.mul a b) w
  | Udiv -> if b = 0L then m else norm (Int64.unsigned_div a b) w
  | Urem -> if b = 0L then a else norm (Int64.unsigned_rem a b) w
  | And -> Int64.logand a b
  | Or -> Int64.logor a b
  | Xor -> Int64.logxor a b
  | Shl ->
      let s = Int64.to_int b mod w in
      norm (Int64.shift_left a s) w
  | Lshr ->
      let s = Int64.to_int b mod w in
      norm (Int64.shift_right_logical a s) w
  | Ashr ->
      let s = Int64.to_int b mod w in
      norm (Int64.shift_right (sext64 a w) s) w

let eval_cmp op a b w =
  match op with
  | Eq -> a = b
  | Ult -> Int64.unsigned_compare a b < 0
  | Ule -> Int64.unsigned_compare a b <= 0
  | Slt -> Int64.compare (sext64 a w) (sext64 b w) < 0
  | Sle -> Int64.compare (sext64 a w) (sext64 b w) <= 0

(* ------------------------------------------------------------------ *)
(* Smart constructors                                                  *)
(* ------------------------------------------------------------------ *)

let unop op arg =
  let w = width arg in
  match arg with
  | Const { value; _ } -> const ~width:w (eval_unop op value w)
  | Unop { op = op'; arg = inner; _ } when op = op' -> inner
  | _ -> Unop { op; arg; width = w }

let neg e = unop Neg e
let bnot e = unop Bnot e

let is_zero = function Const { value = 0L; _ } -> true | _ -> false
let is_all_ones = function
  | Const { value; width } -> value = mask width
  | _ -> false

let rec binop op lhs rhs =
  let w = width lhs in
  assert (width rhs = w);
  match lhs, rhs with
  | Const { value = a; _ }, Const { value = b; _ } ->
      const ~width:w (eval_binop op a b w)
  | _ -> (
      match op with
      | Add when is_zero lhs -> rhs
      | Add when is_zero rhs -> lhs
      | Sub when is_zero rhs -> lhs
      | Sub when equal lhs rhs -> const ~width:w 0L
      | Mul when is_zero lhs || is_zero rhs -> const ~width:w 0L
      | Mul when to_const lhs = Some 1L -> rhs
      | Mul when to_const rhs = Some 1L -> lhs
      | And when is_zero lhs || is_zero rhs -> const ~width:w 0L
      | And when is_all_ones rhs -> lhs
      | And when is_all_ones lhs -> rhs
      | And when equal lhs rhs -> lhs
      | Or when is_zero lhs -> rhs
      | Or when is_zero rhs -> lhs
      | Or when is_all_ones lhs || is_all_ones rhs ->
          const ~width:w (mask w)
      | Or when equal lhs rhs -> lhs
      | Xor when is_zero lhs -> rhs
      | Xor when is_zero rhs -> lhs
      | Xor when equal lhs rhs -> const ~width:w 0L
      | (Shl | Lshr | Ashr) when is_zero rhs -> lhs
      | (Shl | Lshr) when is_zero lhs -> lhs
      (* Reassociate (x + c1) + c2 into x + (c1+c2): the DBT emits long
         chains of address arithmetic that this collapses. *)
      | Add -> (
          match lhs, rhs with
          | Binop { op = Add; lhs = x; rhs = Const c1; _ }, Const c2 ->
              binop Add x (const ~width:w (Int64.add c1.value c2.value))
          | Const _, _ -> binop Add rhs lhs
          | _ -> Binop { op; lhs; rhs; width = w })
      | _ -> Binop { op; lhs; rhs; width = w })

let add a b = binop Add a b
let sub a b = binop Sub a b
let mul a b = binop Mul a b
let udiv a b = binop Udiv a b
let urem a b = binop Urem a b
let band a b = binop And a b
let bor a b = binop Or a b
let bxor a b = binop Xor a b
let shl a b = binop Shl a b
let lshr a b = binop Lshr a b
let ashr a b = binop Ashr a b

let cmp op lhs rhs =
  let w = width lhs in
  assert (width rhs = w);
  match lhs, rhs with
  | Const { value = a; _ }, Const { value = b; _ } ->
      of_bool (eval_cmp op a b w)
  | _ ->
      if equal lhs rhs then
        of_bool (match op with Eq | Ule | Sle -> true | Ult | Slt -> false)
      else Cmp { op; lhs; rhs }

let eq a b = cmp Eq a b
let ult a b = cmp Ult a b
let ule a b = cmp Ule a b
let slt a b = cmp Slt a b
let sle a b = cmp Sle a b
let ne a b =
  match eq a b with
  | Const { value; _ } -> of_bool (value = 0L)
  | e -> Cmp { op = Eq; lhs = e; rhs = bool_f }

(* Boolean operations are just width-1 bitvector operations. *)
let log_and a b = band a b
let log_or a b = bor a b
let log_not a =
  assert (width a = 1);
  bxor a bool_t

let ite cond then_ else_ =
  assert (width cond = 1);
  let w = width then_ in
  assert (width else_ = w);
  match cond with
  | Const { value = 1L; _ } -> then_
  | Const { value = 0L; _ } -> else_
  | _ -> if equal then_ else_ then then_ else Ite { cond; then_; else_; width = w }

let rec extract ~hi ~lo arg =
  let w = width arg in
  assert (0 <= lo && lo <= hi && hi < w);
  if lo = 0 && hi = w - 1 then arg
  else
    match arg with
    | Const { value; _ } ->
        const ~width:(hi - lo + 1) (Int64.shift_right_logical value lo)
    | Extract { lo = lo'; arg = inner; _ } ->
        Extract { hi = hi + lo'; lo = lo + lo'; arg = inner }
    | Concat { high = _; low; _ } when hi < width low -> extract ~hi ~lo low
    | Concat { high; low; _ } when lo >= width low ->
        extract ~hi:(hi - width low) ~lo:(lo - width low) high
    | Zext { arg = inner; _ } when hi < width inner -> extract ~hi ~lo inner
    | Zext { arg = inner; _ } when lo >= width inner ->
        const ~width:(hi - lo + 1) 0L
    | _ -> Extract { hi; lo; arg }

let concat ~high ~low =
  let w = width high + width low in
  assert (w <= 64);
  match high, low with
  | Const { value = vh; _ }, Const { value = vl; _ } ->
      const ~width:w (Int64.logor (Int64.shift_left vh (width low)) vl)
  | _, _ ->
      (* Re-fuse adjacent extracts of the same expression. *)
      (match high, low with
      | ( Extract { hi = h2; lo = l2; arg = a2 },
          Extract { hi = h1; lo = l1; arg = a1 } )
        when l2 = h1 + 1 && a1 == a2 ->
          extract ~hi:h2 ~lo:l1 a1
      | _ -> Concat { high; low; width = w })

let zext ~width:w arg =
  let aw = width arg in
  assert (w >= aw);
  if w = aw then arg
  else
    match arg with
    | Const { value; _ } -> const ~width:w value
    | _ -> Zext { arg; width = w }

let sext ~width:w arg =
  let aw = width arg in
  assert (w >= aw);
  if w = aw then arg
  else
    match arg with
    | Const { value; _ } -> const ~width:w (sext64 value aw)
    | _ -> Sext { arg; width = w }

(* ------------------------------------------------------------------ *)
(* Evaluation under a model                                            *)
(* ------------------------------------------------------------------ *)

module Int_map = Map.Make (Int)

(** A model maps variable ids to concrete values. *)
type model = int64 Int_map.t

let rec eval (m : model) e =
  match e with
  | Const { value; _ } -> value
  | Var { id; width = w; _ } -> (
      match Int_map.find_opt id m with Some v -> norm v w | None -> 0L)
  | Unop { op; arg; width = w } -> eval_unop op (eval m arg) w
  | Binop { op; lhs; rhs; width = w } ->
      eval_binop op (eval m lhs) (eval m rhs) w
  | Cmp { op; lhs; rhs } ->
      if eval_cmp op (eval m lhs) (eval m rhs) (width lhs) then 1L else 0L
  | Ite { cond; then_; else_; _ } ->
      if eval m cond = 1L then eval m then_ else eval m else_
  | Extract { hi; lo; arg } ->
      norm (Int64.shift_right_logical (eval m arg) lo) (hi - lo + 1)
  | Concat { high; low; _ } ->
      Int64.logor (Int64.shift_left (eval m high) (width low)) (eval m low)
  | Zext { arg; _ } -> eval m arg
  | Sext { arg; width = w } -> norm (sext64 (eval m arg) (width arg)) w

(* ------------------------------------------------------------------ *)
(* Variable collection, size, printing                                 *)
(* ------------------------------------------------------------------ *)

module Int_set = Set.Make (Int)

let rec fold_vars f acc = function
  | Const _ -> acc
  | Var { id; name; width } -> f acc id name width
  | Unop { arg; _ } | Extract { arg; _ } | Zext { arg; _ } | Sext { arg; _ } ->
      fold_vars f acc arg
  | Binop { lhs; rhs; _ } | Cmp { lhs; rhs; _ } ->
      fold_vars f (fold_vars f acc lhs) rhs
  | Ite { cond; then_; else_; _ } ->
      fold_vars f (fold_vars f (fold_vars f acc cond) then_) else_
  | Concat { high; low; _ } -> fold_vars f (fold_vars f acc high) low

let vars e = fold_vars (fun s id _ _ -> Int_set.add id s) Int_set.empty e

let rec size = function
  | Const _ | Var _ -> 1
  | Unop { arg; _ } | Extract { arg; _ } | Zext { arg; _ } | Sext { arg; _ }
    ->
      1 + size arg
  | Binop { lhs; rhs; _ } | Cmp { lhs; rhs; _ } -> 1 + size lhs + size rhs
  | Ite { cond; then_; else_; _ } -> 1 + size cond + size then_ + size else_
  | Concat { high; low; _ } -> 1 + size high + size low

let unop_name = function Neg -> "neg" | Bnot -> "not"

let binop_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Udiv -> "udiv"
  | Urem -> "urem" | And -> "and" | Or -> "or" | Xor -> "xor"
  | Shl -> "shl" | Lshr -> "lshr" | Ashr -> "ashr"

let cmpop_name = function
  | Eq -> "eq" | Ult -> "ult" | Ule -> "ule" | Slt -> "slt" | Sle -> "sle"

let rec pp ppf e =
  match e with
  | Const { value; width } -> Fmt.pf ppf "%Ld:%d" value width
  | Var { name; id; _ } -> Fmt.pf ppf "%s#%d" name id
  | Unop { op; arg; _ } -> Fmt.pf ppf "(%s %a)" (unop_name op) pp arg
  | Binop { op; lhs; rhs; _ } ->
      Fmt.pf ppf "(%s %a %a)" (binop_name op) pp lhs pp rhs
  | Cmp { op; lhs; rhs } ->
      Fmt.pf ppf "(%s %a %a)" (cmpop_name op) pp lhs pp rhs
  | Ite { cond; then_; else_; _ } ->
      Fmt.pf ppf "(ite %a %a %a)" pp cond pp then_ pp else_
  | Extract { hi; lo; arg } -> Fmt.pf ppf "%a[%d:%d]" pp arg hi lo
  | Concat { high; low; _ } -> Fmt.pf ppf "(%a @@ %a)" pp high pp low
  | Zext { arg; width } -> Fmt.pf ppf "(zext%d %a)" width pp arg
  | Sext { arg; width } -> Fmt.pf ppf "(sext%d %a)" width pp arg

let to_string e = Fmt.str "%a" pp e
