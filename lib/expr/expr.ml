(** Hash-consed bitvector expressions for the symbolic execution engine.

    Expressions model guest machine words of widths 1, 8, 16 and 32 bits.
    Construction goes through smart constructors which perform constant
    folding and local algebraic simplification, so that the common case of
    fully-concrete computation never allocates deep trees.  The deeper
    bitfield-theory simplifier from the paper (known-bits / demanded-bits
    propagation, S2E paper section 5) lives in {!Simplifier}.

    Every node is {e interned} in a domain-local weak table: within one
    domain, structurally equal expressions built through the constructors
    below are physically equal, so equality is (almost always) a pointer
    comparison.  Each node also carries metadata computed once at
    construction — a strong 64-bit mixing hash, the tree node count, and
    the free-variable id set — making {!hash}, {!size} and {!vars} O(1).
    The solver's query-key computation, independent-constraint slicing and
    per-node memo tables (simplifier, bit-blasting) are built on these.

    Interning is per-domain (OCaml 5 [Domain.DLS]) so parallel workers
    stay lock-free; only the node-id counter refills from a shared atomic,
    in blocks.  Expressions that cross domains (stolen states) or
    processes (snapshot decode) are {e re-interned} into the receiving
    side's table ({!interner}, {!Raw}) rather than assumed physically
    unique; {!equal} keeps a hash-guarded structural fallback so
    mixed-provenance comparisons stay correct either way. *)

type unop =
  | Neg  (** two's-complement negation *)
  | Bnot (** bitwise complement *)

type binop =
  | Add
  | Sub
  | Mul
  | Udiv (** unsigned division; division by zero yields all-ones, as SMT-LIB *)
  | Urem (** unsigned remainder; remainder by zero yields the dividend *)
  | And
  | Or
  | Xor
  | Shl  (** left shift, shift amount taken modulo width *)
  | Lshr (** logical right shift *)
  | Ashr (** arithmetic right shift *)

type cmpop =
  | Eq
  | Ult
  | Ule
  | Slt
  | Sle

module Int_map = Map.Make (Int)
module Int_set = Set.Make (Int)

(** Per-node metadata, computed once when the node is interned. *)
type meta = {
  uid : int;       (* process-unique node id (never reused) *)
  mhash : int;     (* strong structural hash *)
  msize : int;     (* tree node count (shared subtrees counted per use) *)
  mvars : Int_set.t; (* free-variable id set *)
}

type t =
  | Const of { value : int64; width : int; meta : meta }
  | Var of { id : int; name : string; width : int; meta : meta }
  | Unop of { op : unop; arg : t; width : int; meta : meta }
  | Binop of { op : binop; lhs : t; rhs : t; width : int; meta : meta }
  | Cmp of { op : cmpop; lhs : t; rhs : t; meta : meta } (* width 1 *)
  | Ite of { cond : t; then_ : t; else_ : t; width : int; meta : meta }
  | Extract of { hi : int; lo : int; arg : t; meta : meta }
      (* width = hi - lo + 1 *)
  | Concat of { high : t; low : t; width : int; meta : meta }
  | Zext of { arg : t; width : int; meta : meta }
  | Sext of { arg : t; width : int; meta : meta }

let width = function
  | Const { width; _ } | Var { width; _ } | Unop { width; _ }
  | Binop { width; _ } | Ite { width; _ } | Concat { width; _ }
  | Zext { width; _ } | Sext { width; _ } ->
      width
  | Cmp _ -> 1
  | Extract { hi; lo; _ } -> hi - lo + 1

let meta = function
  | Const { meta; _ } | Var { meta; _ } | Unop { meta; _ }
  | Binop { meta; _ } | Cmp { meta; _ } | Ite { meta; _ }
  | Extract { meta; _ } | Concat { meta; _ } | Zext { meta; _ }
  | Sext { meta; _ } ->
      meta

let node_id e = (meta e).uid
let hash e = (meta e).mhash
let size e = (meta e).msize
let vars e = (meta e).mvars

let mask w =
  if w >= 64 then -1L else Int64.sub (Int64.shift_left 1L w) 1L

(* Sign-extend the low [w] bits of [v] to a full int64. *)
let sext64 v w =
  if w >= 64 then v
  else
    let shift = 64 - w in
    Int64.shift_right (Int64.shift_left v shift) shift

let norm v w = Int64.logand v (mask w)

let is_const = function Const _ -> true | _ -> false

let to_const = function Const { value; _ } -> Some value | _ -> None

(* ------------------------------------------------------------------ *)
(* Interning                                                           *)
(* ------------------------------------------------------------------ *)

(* Splitmix-style mixing over the native 63-bit int.  Constants fit in
   OCaml's int literal range (< 2^62). *)
let mix h k =
  let h = (h lxor k) * 0x27d4eb2f165667c5 in
  h lxor (h lsr 29)

(* Fold a 64-bit value into a native int without losing the top bit. *)
let i64h v = Int64.to_int v lxor Int64.to_int (Int64.shift_right_logical v 32)

let unop_tag = function Neg -> 0 | Bnot -> 1

let binop_tag = function
  | Add -> 0 | Sub -> 1 | Mul -> 2 | Udiv -> 3 | Urem -> 4 | And -> 5
  | Or -> 6 | Xor -> 7 | Shl -> 8 | Lshr -> 9 | Ashr -> 10

let cmpop_tag = function Eq -> 0 | Ult -> 1 | Ule -> 2 | Slt -> 3 | Sle -> 4

(* Shallow structural equality: children are compared physically, which is
   exact for candidates built over already-interned subtrees — the only
   shape the intern table ever probes with. *)
let shallow_equal a b =
  match a, b with
  | Const a, Const b -> a.value = b.value && a.width = b.width
  | Var a, Var b -> a.id = b.id
  | Unop a, Unop b -> a.op = b.op && a.arg == b.arg
  | Binop a, Binop b -> a.op = b.op && a.lhs == b.lhs && a.rhs == b.rhs
  | Cmp a, Cmp b -> a.op = b.op && a.lhs == b.lhs && a.rhs == b.rhs
  | Ite a, Ite b ->
      a.cond == b.cond && a.then_ == b.then_ && a.else_ == b.else_
  | Extract a, Extract b -> a.hi = b.hi && a.lo = b.lo && a.arg == b.arg
  | Concat a, Concat b -> a.high == b.high && a.low == b.low
  | Zext a, Zext b -> a.width = b.width && a.arg == b.arg
  | Sext a, Sext b -> a.width = b.width && a.arg == b.arg
  | ( ( Const _ | Var _ | Unop _ | Binop _ | Cmp _ | Ite _ | Extract _
      | Concat _ | Zext _ | Sext _ ),
      _ ) ->
      false

module HC = Weak.Make (struct
  type nonrec t = t

  let hash e = (meta e).mhash land max_int
  let equal = shallow_equal
end)

(* Domain-local intern table: workers never contend on it, and a dying
   domain's table is simply collected. *)
let table_key : HC.t Domain.DLS.key = Domain.DLS.new_key (fun () -> HC.create 4096)

(* Node ids are process-unique (memo tables key on them across stolen /
   decoded expressions) but handed out in domain-local blocks so the hot
   construction path never touches the shared atomic. *)
let uid_block = 1024
let uid_source = Atomic.make 0

type uid_alloc = { mutable next : int; mutable limit : int }

let uid_key : uid_alloc Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { next = 0; limit = 0 })

let next_uid () =
  let a = Domain.DLS.get uid_key in
  if a.next >= a.limit then begin
    a.next <- Atomic.fetch_and_add uid_source uid_block;
    a.limit <- a.next + uid_block
  end;
  let id = a.next in
  a.next <- id + 1;
  id

let intern node = HC.merge (Domain.DLS.get table_key) node

(* Interning raw constructors: compute metadata, then find-or-add.  On a
   hit the candidate (and its uid) is discarded; uids may have gaps. *)

let mk_const value width =
  let mhash = mix (mix 1 (i64h value)) width in
  intern
    (Const
       { value; width; meta = { uid = next_uid (); mhash; msize = 1; mvars = Int_set.empty } })

let mk_var id name width =
  (* Hash and shallow equality key on the variable id alone: ids are
     globally unique, so name/width are attributes, not identity. *)
  let mhash = mix 2 id in
  intern
    (Var
       { id; name; width;
         meta = { uid = next_uid (); mhash; msize = 1; mvars = Int_set.singleton id } })

let mk_unop op arg width =
  let am = meta arg in
  let mhash = mix (mix 3 (unop_tag op)) am.mhash in
  intern
    (Unop
       { op; arg; width;
         meta = { uid = next_uid (); mhash; msize = 1 + am.msize; mvars = am.mvars } })

let mk_binop op lhs rhs width =
  let lm = meta lhs and rm = meta rhs in
  let mhash = mix (mix (mix 4 (binop_tag op)) lm.mhash) rm.mhash in
  intern
    (Binop
       { op; lhs; rhs; width;
         meta =
           { uid = next_uid (); mhash; msize = 1 + lm.msize + rm.msize;
             mvars = Int_set.union lm.mvars rm.mvars } })

let mk_cmp op lhs rhs =
  let lm = meta lhs and rm = meta rhs in
  let mhash = mix (mix (mix 5 (cmpop_tag op)) lm.mhash) rm.mhash in
  intern
    (Cmp
       { op; lhs; rhs;
         meta =
           { uid = next_uid (); mhash; msize = 1 + lm.msize + rm.msize;
             mvars = Int_set.union lm.mvars rm.mvars } })

let mk_ite cond then_ else_ width =
  let cm = meta cond and tm = meta then_ and em = meta else_ in
  let mhash = mix (mix (mix 6 cm.mhash) tm.mhash) em.mhash in
  intern
    (Ite
       { cond; then_; else_; width;
         meta =
           { uid = next_uid (); mhash; msize = 1 + cm.msize + tm.msize + em.msize;
             mvars = Int_set.union cm.mvars (Int_set.union tm.mvars em.mvars) } })

let mk_extract hi lo arg =
  let am = meta arg in
  let mhash = mix (mix (mix 7 hi) lo) am.mhash in
  intern
    (Extract
       { hi; lo; arg;
         meta = { uid = next_uid (); mhash; msize = 1 + am.msize; mvars = am.mvars } })

let mk_concat high low width =
  let hm = meta high and lm = meta low in
  let mhash = mix (mix 8 hm.mhash) lm.mhash in
  intern
    (Concat
       { high; low; width;
         meta =
           { uid = next_uid (); mhash; msize = 1 + hm.msize + lm.msize;
             mvars = Int_set.union hm.mvars lm.mvars } })

let mk_zext arg width =
  let am = meta arg in
  let mhash = mix (mix 9 width) am.mhash in
  intern
    (Zext
       { arg; width;
         meta = { uid = next_uid (); mhash; msize = 1 + am.msize; mvars = am.mvars } })

let mk_sext arg width =
  let am = meta arg in
  let mhash = mix (mix 10 width) am.mhash in
  intern
    (Sext
       { arg; width;
         meta = { uid = next_uid (); mhash; msize = 1 + am.msize; mvars = am.mvars } })

(* ------------------------------------------------------------------ *)
(* Basic constructors                                                  *)
(* ------------------------------------------------------------------ *)

let const ?(width = 32) value = mk_const (norm value width) width
let bool_t = const ~width:1 1L
let bool_f = const ~width:1 0L
let of_bool b = if b then bool_t else bool_f

(* Atomic so parallel exploration workers can mint variables
   concurrently without duplicating ids. *)
let var_counter = Atomic.make 0

let fresh_var ?(width = 32) name =
  mk_var (Atomic.fetch_and_add var_counter 1 + 1) name width

(* Raise the counter to at least [n] so variables decoded from another
   process never collide with locally minted ones. *)
let rec bump_var_counter n =
  let cur = Atomic.get var_counter in
  if cur < n && not (Atomic.compare_and_set var_counter cur n) then
    bump_var_counter n

(* Equality: pointer comparison resolves same-domain comparisons (both
   ways — interning makes structurally equal nodes physically equal);
   the cached hashes reject unequal nodes in O(1); only cross-provenance
   equal pairs pay a structural walk. *)
let rec equal a b =
  a == b
  || hash a = hash b
     &&
     match a, b with
     | Const a, Const b -> a.value = b.value && a.width = b.width
     | Var a, Var b -> a.id = b.id
     | Unop a, Unop b -> a.op = b.op && equal a.arg b.arg
     | Binop a, Binop b -> a.op = b.op && equal a.lhs b.lhs && equal a.rhs b.rhs
     | Cmp a, Cmp b -> a.op = b.op && equal a.lhs b.lhs && equal a.rhs b.rhs
     | Ite a, Ite b ->
         equal a.cond b.cond && equal a.then_ b.then_ && equal a.else_ b.else_
     | Extract a, Extract b -> a.hi = b.hi && a.lo = b.lo && equal a.arg b.arg
     | Concat a, Concat b -> equal a.high b.high && equal a.low b.low
     | Zext a, Zext b -> a.width = b.width && equal a.arg b.arg
     | Sext a, Sext b -> a.width = b.width && equal a.arg b.arg
     | ( ( Const _ | Var _ | Unop _ | Binop _ | Cmp _ | Ite _ | Extract _
         | Concat _ | Zext _ | Sext _ ),
         _ ) ->
         false

let eval_unop op v w =
  match op with
  | Neg -> norm (Int64.neg v) w
  | Bnot -> norm (Int64.lognot v) w

let eval_binop op a b w =
  let m = mask w in
  match op with
  | Add -> norm (Int64.add a b) w
  | Sub -> norm (Int64.sub a b) w
  | Mul -> norm (Int64.mul a b) w
  | Udiv -> if b = 0L then m else norm (Int64.unsigned_div a b) w
  | Urem -> if b = 0L then a else norm (Int64.unsigned_rem a b) w
  | And -> Int64.logand a b
  | Or -> Int64.logor a b
  | Xor -> Int64.logxor a b
  | Shl ->
      let s = Int64.to_int b mod w in
      norm (Int64.shift_left a s) w
  | Lshr ->
      let s = Int64.to_int b mod w in
      norm (Int64.shift_right_logical a s) w
  | Ashr ->
      let s = Int64.to_int b mod w in
      norm (Int64.shift_right (sext64 a w) s) w

let eval_cmp op a b w =
  match op with
  | Eq -> a = b
  | Ult -> Int64.unsigned_compare a b < 0
  | Ule -> Int64.unsigned_compare a b <= 0
  | Slt -> Int64.compare (sext64 a w) (sext64 b w) < 0
  | Sle -> Int64.compare (sext64 a w) (sext64 b w) <= 0

(* ------------------------------------------------------------------ *)
(* Smart constructors                                                  *)
(* ------------------------------------------------------------------ *)

let unop op arg =
  let w = width arg in
  match arg with
  | Const { value; _ } -> const ~width:w (eval_unop op value w)
  | Unop { op = op'; arg = inner; _ } when op = op' -> inner
  | _ -> mk_unop op arg w

let neg e = unop Neg e
let bnot e = unop Bnot e

let is_zero = function Const { value = 0L; _ } -> true | _ -> false
let is_all_ones = function
  | Const { value; width; _ } -> value = mask width
  | _ -> false

let rec binop op lhs rhs =
  let w = width lhs in
  assert (width rhs = w);
  match lhs, rhs with
  | Const { value = a; _ }, Const { value = b; _ } ->
      const ~width:w (eval_binop op a b w)
  | _ -> (
      match op with
      | Add when is_zero lhs -> rhs
      | Add when is_zero rhs -> lhs
      | Sub when is_zero rhs -> lhs
      | Sub when equal lhs rhs -> const ~width:w 0L
      | Mul when is_zero lhs || is_zero rhs -> const ~width:w 0L
      | Mul when to_const lhs = Some 1L -> rhs
      | Mul when to_const rhs = Some 1L -> lhs
      | And when is_zero lhs || is_zero rhs -> const ~width:w 0L
      | And when is_all_ones rhs -> lhs
      | And when is_all_ones lhs -> rhs
      | And when equal lhs rhs -> lhs
      | Or when is_zero lhs -> rhs
      | Or when is_zero rhs -> lhs
      | Or when is_all_ones lhs || is_all_ones rhs ->
          const ~width:w (mask w)
      | Or when equal lhs rhs -> lhs
      | Xor when is_zero lhs -> rhs
      | Xor when is_zero rhs -> lhs
      | Xor when equal lhs rhs -> const ~width:w 0L
      | (Shl | Lshr | Ashr) when is_zero rhs -> lhs
      | (Shl | Lshr) when is_zero lhs -> lhs
      (* Reassociate (x + c1) + c2 into x + (c1+c2): the DBT emits long
         chains of address arithmetic that this collapses. *)
      | Add -> (
          match lhs, rhs with
          | Binop { op = Add; lhs = x; rhs = Const c1; _ }, Const c2 ->
              binop Add x (const ~width:w (Int64.add c1.value c2.value))
          | Const _, _ -> binop Add rhs lhs
          | _ -> mk_binop op lhs rhs w)
      | _ -> mk_binop op lhs rhs w)

let add a b = binop Add a b
let sub a b = binop Sub a b
let mul a b = binop Mul a b
let udiv a b = binop Udiv a b
let urem a b = binop Urem a b
let band a b = binop And a b
let bor a b = binop Or a b
let bxor a b = binop Xor a b
let shl a b = binop Shl a b
let lshr a b = binop Lshr a b
let ashr a b = binop Ashr a b

let cmp op lhs rhs =
  let w = width lhs in
  assert (width rhs = w);
  match lhs, rhs with
  | Const { value = a; _ }, Const { value = b; _ } ->
      of_bool (eval_cmp op a b w)
  | _ ->
      if equal lhs rhs then
        of_bool (match op with Eq | Ule | Sle -> true | Ult | Slt -> false)
      else mk_cmp op lhs rhs

let eq a b = cmp Eq a b
let ult a b = cmp Ult a b
let ule a b = cmp Ule a b
let slt a b = cmp Slt a b
let sle a b = cmp Sle a b
let ne a b =
  match eq a b with
  | Const { value; _ } -> of_bool (value = 0L)
  | e -> mk_cmp Eq e bool_f

(* Boolean operations are just width-1 bitvector operations. *)
let log_and a b = band a b
let log_or a b = bor a b
let log_not a =
  assert (width a = 1);
  bxor a bool_t

let ite cond then_ else_ =
  assert (width cond = 1);
  let w = width then_ in
  assert (width else_ = w);
  match cond with
  | Const { value = 1L; _ } -> then_
  | Const { value = 0L; _ } -> else_
  | _ -> if equal then_ else_ then then_ else mk_ite cond then_ else_ w

let rec extract ~hi ~lo arg =
  let w = width arg in
  assert (0 <= lo && lo <= hi && hi < w);
  if lo = 0 && hi = w - 1 then arg
  else
    match arg with
    | Const { value; _ } ->
        const ~width:(hi - lo + 1) (Int64.shift_right_logical value lo)
    | Extract { lo = lo'; arg = inner; _ } ->
        mk_extract (hi + lo') (lo + lo') inner
    | Concat { high = _; low; _ } when hi < width low -> extract ~hi ~lo low
    | Concat { high; low; _ } when lo >= width low ->
        extract ~hi:(hi - width low) ~lo:(lo - width low) high
    | Zext { arg = inner; _ } when hi < width inner -> extract ~hi ~lo inner
    | Zext { arg = inner; _ } when lo >= width inner ->
        const ~width:(hi - lo + 1) 0L
    | _ -> mk_extract hi lo arg

let concat ~high ~low =
  let w = width high + width low in
  assert (w <= 64);
  match high, low with
  | Const { value = vh; _ }, Const { value = vl; _ } ->
      const ~width:w (Int64.logor (Int64.shift_left vh (width low)) vl)
  | _, _ ->
      (* Re-fuse adjacent extracts of the same expression. *)
      (match high, low with
      | ( Extract { hi = h2; lo = l2; arg = a2; _ },
          Extract { hi = h1; lo = l1; arg = a1; _ } )
        when l2 = h1 + 1 && a1 == a2 ->
          extract ~hi:h2 ~lo:l1 a1
      | _ -> mk_concat high low w)

let zext ~width:w arg =
  let aw = width arg in
  assert (w >= aw);
  if w = aw then arg
  else
    match arg with
    | Const { value; _ } -> const ~width:w value
    | _ -> mk_zext arg w

let sext ~width:w arg =
  let aw = width arg in
  assert (w >= aw);
  if w = aw then arg
  else
    match arg with
    | Const { value; _ } -> const ~width:w (sext64 value aw)
    | _ -> mk_sext arg w

(* ------------------------------------------------------------------ *)
(* Raw interning constructors and re-interning                         *)
(* ------------------------------------------------------------------ *)

(* Structure-preserving constructors for deserialization: they intern (so
   decoded expressions join the local table) but never simplify — the
   distribution codec's determinism argument requires a decoded state to
   carry exactly the constraint structure the fork point had. *)
module Raw = struct
  let const ~width value = mk_const (norm value width) width
  let var ~id ~name ~width = mk_var id name width

  let unop op arg = mk_unop op arg (width arg)

  let binop op lhs rhs =
    assert (width lhs = width rhs);
    mk_binop op lhs rhs (width lhs)

  let cmp op lhs rhs =
    assert (width lhs = width rhs);
    mk_cmp op lhs rhs

  let ite cond then_ else_ =
    assert (width cond = 1 && width then_ = width else_);
    mk_ite cond then_ else_ (width then_)

  let extract ~hi ~lo arg =
    assert (0 <= lo && lo <= hi && hi < width arg);
    mk_extract hi lo arg

  let concat ~high ~low = mk_concat high low (width high + width low)

  let zext ~width:w arg =
    assert (w >= width arg);
    mk_zext arg w

  let sext ~width:w arg =
    assert (w >= width arg);
    mk_sext arg w
end

(* Re-intern an expression built by another domain into the current
   domain's table, preserving structure exactly.  The memo table is keyed
   by node id so shared subtrees (DAGs) are walked once; an [interner]
   shares its memo across calls, letting a whole execution state (regs,
   overlay, constraints) re-intern with full sharing. *)
let rec intern_into memo e =
  match Hashtbl.find_opt memo (node_id e) with
  | Some e' -> e'
  | None ->
      let e' =
        match e with
        | Const { value; width; _ } -> mk_const value width
        | Var { id; name; width; _ } -> mk_var id name width
        | Unop { op; arg; width; _ } -> mk_unop op (intern_into memo arg) width
        | Binop { op; lhs; rhs; width; _ } ->
            mk_binop op (intern_into memo lhs) (intern_into memo rhs) width
        | Cmp { op; lhs; rhs; _ } ->
            mk_cmp op (intern_into memo lhs) (intern_into memo rhs)
        | Ite { cond; then_; else_; width; _ } ->
            mk_ite (intern_into memo cond) (intern_into memo then_)
              (intern_into memo else_) width
        | Extract { hi; lo; arg; _ } -> mk_extract hi lo (intern_into memo arg)
        | Concat { high; low; width; _ } ->
            mk_concat (intern_into memo high) (intern_into memo low) width
        | Zext { arg; width; _ } -> mk_zext (intern_into memo arg) width
        | Sext { arg; width; _ } -> mk_sext (intern_into memo arg) width
      in
      Hashtbl.replace memo (node_id e) e';
      e'

let interner () =
  let memo = Hashtbl.create 64 in
  fun e -> intern_into memo e

let intern_expr e = intern_into (Hashtbl.create 16) e

(* ------------------------------------------------------------------ *)
(* Evaluation under a model                                            *)
(* ------------------------------------------------------------------ *)

(** A model maps variable ids to concrete values. *)
type model = int64 Int_map.t

let rec eval (m : model) e =
  match e with
  | Const { value; _ } -> value
  | Var { id; width = w; _ } -> (
      match Int_map.find_opt id m with Some v -> norm v w | None -> 0L)
  | Unop { op; arg; width = w; _ } -> eval_unop op (eval m arg) w
  | Binop { op; lhs; rhs; width = w; _ } ->
      eval_binop op (eval m lhs) (eval m rhs) w
  | Cmp { op; lhs; rhs; _ } ->
      if eval_cmp op (eval m lhs) (eval m rhs) (width lhs) then 1L else 0L
  | Ite { cond; then_; else_; _ } ->
      if eval m cond = 1L then eval m then_ else eval m else_
  | Extract { hi; lo; arg; _ } ->
      norm (Int64.shift_right_logical (eval m arg) lo) (hi - lo + 1)
  | Concat { high; low; _ } ->
      Int64.logor (Int64.shift_left (eval m high) (width low)) (eval m low)
  | Zext { arg; _ } -> eval m arg
  | Sext { arg; width = w; _ } -> norm (sext64 (eval m arg) (width arg)) w

(* ------------------------------------------------------------------ *)
(* Variable collection, printing                                       *)
(* ------------------------------------------------------------------ *)

(* Occurrence fold, kept for callers that need variable names/widths (the
   id set alone is cached in the metadata — prefer {!vars}). *)
let rec fold_vars f acc = function
  | Const _ -> acc
  | Var { id; name; width; _ } -> f acc id name width
  | Unop { arg; _ } | Extract { arg; _ } | Zext { arg; _ } | Sext { arg; _ } ->
      fold_vars f acc arg
  | Binop { lhs; rhs; _ } | Cmp { lhs; rhs; _ } ->
      fold_vars f (fold_vars f acc lhs) rhs
  | Ite { cond; then_; else_; _ } ->
      fold_vars f (fold_vars f (fold_vars f acc cond) then_) else_
  | Concat { high; low; _ } -> fold_vars f (fold_vars f acc high) low

let unop_name = function Neg -> "neg" | Bnot -> "not"

let binop_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Udiv -> "udiv"
  | Urem -> "urem" | And -> "and" | Or -> "or" | Xor -> "xor"
  | Shl -> "shl" | Lshr -> "lshr" | Ashr -> "ashr"

let cmpop_name = function
  | Eq -> "eq" | Ult -> "ult" | Ule -> "ule" | Slt -> "slt" | Sle -> "sle"

let rec pp ppf e =
  match e with
  | Const { value; width; _ } -> Fmt.pf ppf "%Ld:%d" value width
  | Var { name; id; _ } -> Fmt.pf ppf "%s#%d" name id
  | Unop { op; arg; _ } -> Fmt.pf ppf "(%s %a)" (unop_name op) pp arg
  | Binop { op; lhs; rhs; _ } ->
      Fmt.pf ppf "(%s %a %a)" (binop_name op) pp lhs pp rhs
  | Cmp { op; lhs; rhs; _ } ->
      Fmt.pf ppf "(%s %a %a)" (cmpop_name op) pp lhs pp rhs
  | Ite { cond; then_; else_; _ } ->
      Fmt.pf ppf "(ite %a %a %a)" pp cond pp then_ pp else_
  | Extract { hi; lo; arg; _ } -> Fmt.pf ppf "%a[%d:%d]" pp arg hi lo
  | Concat { high; low; _ } -> Fmt.pf ppf "(%a @@ %a)" pp high pp low
  | Zext { arg; width; _ } -> Fmt.pf ppf "(zext%d %a)" width pp arg
  | Sext { arg; width; _ } -> Fmt.pf ppf "(sext%d %a)" width pp arg

let to_string e = Fmt.str "%a" pp e
