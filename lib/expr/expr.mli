(** Bitvector expressions for the symbolic execution engine.

    Expressions model guest machine words of widths 1, 8, 16 and 32 bits.
    Construction goes through smart constructors which perform constant
    folding and local algebraic simplification, so fully-concrete
    computation never builds deep trees; the deeper bitfield-theory
    simplifier lives in {!Simplifier}.

    The representation is exposed (plugins and tools pattern-match on
    [Var] to identify symbolic inputs), but values must only be built with
    the smart constructors below so the folding invariants hold. *)

type unop =
  | Neg  (** two's-complement negation *)
  | Bnot (** bitwise complement *)

type binop =
  | Add
  | Sub
  | Mul
  | Udiv (** unsigned; division by zero yields all-ones, as in SMT-LIB *)
  | Urem (** unsigned; remainder by zero yields the dividend *)
  | And
  | Or
  | Xor
  | Shl  (** shift amount taken modulo the width *)
  | Lshr
  | Ashr

type cmpop = Eq | Ult | Ule | Slt | Sle

type t =
  | Const of { value : int64; width : int }
  | Var of { id : int; name : string; width : int }
  | Unop of { op : unop; arg : t; width : int }
  | Binop of { op : binop; lhs : t; rhs : t; width : int }
  | Cmp of { op : cmpop; lhs : t; rhs : t }
  | Ite of { cond : t; then_ : t; else_ : t; width : int }
  | Extract of { hi : int; lo : int; arg : t }
  | Concat of { high : t; low : t; width : int }
  | Zext of { arg : t; width : int }
  | Sext of { arg : t; width : int }

val width : t -> int

val mask : int -> int64
(** All-ones value of a width. *)

val sext64 : int64 -> int -> int64
(** Sign-extend the low [w] bits to a full int64. *)

val norm : int64 -> int -> int64
(** Truncate to a width. *)

(** {1 Construction} *)

val const : ?width:int -> int64 -> t
(** Defaults to width 32; the value is truncated to the width. *)

val bool_t : t
val bool_f : t
val of_bool : bool -> t

val fresh_var : ?width:int -> string -> t
(** A fresh symbolic variable with a unique id. *)

val bump_var_counter : int -> unit
(** Raise the fresh-variable counter to at least the given value.  Used
    when adopting variables serialized by another process so locally
    minted ids never collide with decoded ones. *)

val is_const : t -> bool
val to_const : t -> int64 option
val equal : t -> t -> bool

(** {1 Smart constructors} *)

val unop : unop -> t -> t
val neg : t -> t
val bnot : t -> t

val binop : binop -> t -> t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val udiv : t -> t -> t
val urem : t -> t -> t
val band : t -> t -> t
val bor : t -> t -> t
val bxor : t -> t -> t
val shl : t -> t -> t
val lshr : t -> t -> t
val ashr : t -> t -> t

val cmp : cmpop -> t -> t -> t
val eq : t -> t -> t
val ult : t -> t -> t
val ule : t -> t -> t
val slt : t -> t -> t
val sle : t -> t -> t
val ne : t -> t -> t

val log_and : t -> t -> t
(** Width-1 conjunction. *)

val log_or : t -> t -> t
val log_not : t -> t

val ite : t -> t -> t -> t
val extract : hi:int -> lo:int -> t -> t
val concat : high:t -> low:t -> t
val zext : width:int -> t -> t
val sext : width:int -> t -> t

(** {1 Evaluation} *)

val eval_unop : unop -> int64 -> int -> int64
val eval_binop : binop -> int64 -> int64 -> int -> int64
val eval_cmp : cmpop -> int64 -> int64 -> int -> bool

module Int_map : Map.S with type key = int

type model = int64 Int_map.t
(** Variable id → concrete value.  Unbound variables read as 0. *)

val eval : model -> t -> int64

(** {1 Inspection} *)

module Int_set : Set.S with type elt = int

val fold_vars : ('a -> int -> string -> int -> 'a) -> 'a -> t -> 'a
(** Fold over (id, name, width) of every variable occurrence. *)

val vars : t -> Int_set.t
val size : t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string
