(** Hash-consed bitvector expressions for the symbolic execution engine.

    Expressions model guest machine words of widths 1, 8, 16 and 32 bits.
    Construction goes through smart constructors which perform constant
    folding and local algebraic simplification, so fully-concrete
    computation never builds deep trees; the deeper bitfield-theory
    simplifier lives in {!Simplifier}.

    Every node is interned in a domain-local weak table at construction:
    within one domain, structurally equal expressions are physically
    equal, and each node carries precomputed metadata — a strong mixing
    hash, tree node count and free-variable id set — so {!equal} is
    (almost always) a pointer comparison and {!hash}, {!size} and {!vars}
    are O(1).  Expressions received from another domain or process must
    be re-interned ({!interner}, {!Raw}) before the physical-equality
    shortcut applies; {!equal} remains correct either way via a
    hash-guarded structural fallback.

    The representation is exposed for pattern matching (plugins and tools
    match on [Var] to identify symbolic inputs) but is [private]:
    building values outside the constructors below is a compile error,
    which is what keeps the interning and folding invariants sound. *)

type unop =
  | Neg  (** two's-complement negation *)
  | Bnot (** bitwise complement *)

type binop =
  | Add
  | Sub
  | Mul
  | Udiv (** unsigned; division by zero yields all-ones, as in SMT-LIB *)
  | Urem (** unsigned; remainder by zero yields the dividend *)
  | And
  | Or
  | Xor
  | Shl  (** shift amount taken modulo the width *)
  | Lshr
  | Ashr

type cmpop = Eq | Ult | Ule | Slt | Sle

module Int_map : Map.S with type key = int
module Int_set : Set.S with type elt = int

type meta
(** Per-node interned metadata (unique id, hash, size, variable set).
    Opaque; read it through {!node_id}, {!hash}, {!size} and {!vars}. *)

type t = private
  | Const of { value : int64; width : int; meta : meta }
  | Var of { id : int; name : string; width : int; meta : meta }
  | Unop of { op : unop; arg : t; width : int; meta : meta }
  | Binop of { op : binop; lhs : t; rhs : t; width : int; meta : meta }
  | Cmp of { op : cmpop; lhs : t; rhs : t; meta : meta }
  | Ite of { cond : t; then_ : t; else_ : t; width : int; meta : meta }
  | Extract of { hi : int; lo : int; arg : t; meta : meta }
  | Concat of { high : t; low : t; width : int; meta : meta }
  | Zext of { arg : t; width : int; meta : meta }
  | Sext of { arg : t; width : int; meta : meta }

val width : t -> int

val mask : int -> int64
(** All-ones value of a width. *)

val sext64 : int64 -> int -> int64
(** Sign-extend the low [w] bits to a full int64. *)

val norm : int64 -> int -> int64
(** Truncate to a width. *)

(** {1 Interned metadata} *)

val node_id : t -> int
(** Process-unique node id, assigned at interning and never reused.
    Structurally equal nodes interned in the same domain share one id;
    suitable as a memo-table key. *)

val hash : t -> int
(** Strong structural mixing hash, computed once at construction.  Equal
    expressions have equal hashes regardless of which domain built
    them. *)

val size : t -> int
(** Tree node count (shared subtrees counted per occurrence), O(1). *)

val vars : t -> Int_set.t
(** Free-variable id set, O(1) — cached at construction. *)

(** {1 Construction} *)

val const : ?width:int -> int64 -> t
(** Defaults to width 32; the value is truncated to the width. *)

val bool_t : t
val bool_f : t
val of_bool : bool -> t

val fresh_var : ?width:int -> string -> t
(** A fresh symbolic variable with a unique id. *)

val bump_var_counter : int -> unit
(** Raise the fresh-variable counter to at least the given value.  Used
    when adopting variables serialized by another process so locally
    minted ids never collide with decoded ones. *)

val is_const : t -> bool
val to_const : t -> int64 option

val equal : t -> t -> bool
(** Structural equality.  O(1) for expressions interned in the same
    domain (pointer comparison both ways); cross-domain comparisons are
    rejected in O(1) by hash mismatch or confirmed by a structural
    walk. *)

(** {1 Smart constructors} *)

val unop : unop -> t -> t
val neg : t -> t
val bnot : t -> t

val binop : binop -> t -> t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val udiv : t -> t -> t
val urem : t -> t -> t
val band : t -> t -> t
val bor : t -> t -> t
val bxor : t -> t -> t
val shl : t -> t -> t
val lshr : t -> t -> t
val ashr : t -> t -> t

val cmp : cmpop -> t -> t -> t
val eq : t -> t -> t
val ult : t -> t -> t
val ule : t -> t -> t
val slt : t -> t -> t
val sle : t -> t -> t
val ne : t -> t -> t

val log_and : t -> t -> t
(** Width-1 conjunction. *)

val log_or : t -> t -> t
val log_not : t -> t

val ite : t -> t -> t -> t
val extract : hi:int -> lo:int -> t -> t
val concat : high:t -> low:t -> t
val zext : width:int -> t -> t
val sext : width:int -> t -> t

(** {1 Raw construction and re-interning} *)

(** Structure-preserving constructors: intern but never fold or
    simplify.  For deserializers that must reproduce a wire structure
    exactly (the dist codec's determinism contract) and for tests that
    need a specific shape.  Width invariants are still asserted. *)
module Raw : sig
  val const : width:int -> int64 -> t
  val var : id:int -> name:string -> width:int -> t
  val unop : unop -> t -> t
  val binop : binop -> t -> t -> t
  val cmp : cmpop -> t -> t -> t
  val ite : t -> t -> t -> t
  val extract : hi:int -> lo:int -> t -> t
  val concat : high:t -> low:t -> t
  val zext : width:int -> t -> t
  val sext : width:int -> t -> t
end

val intern_expr : t -> t
(** Re-intern an expression (built by another domain) into the current
    domain's table, structure-preserving.  Returns the canonical local
    node; afterwards the physical-equality fast path applies against
    locally built expressions. *)

val interner : unit -> t -> t
(** Like {!intern_expr} with a memo shared across calls, so a batch of
    expressions (a whole execution state) re-interns each shared subtree
    once and keeps its internal sharing. *)

(** {1 Evaluation} *)

val eval_unop : unop -> int64 -> int -> int64
val eval_binop : binop -> int64 -> int64 -> int -> int64
val eval_cmp : cmpop -> int64 -> int64 -> int -> bool

type model = int64 Int_map.t
(** Variable id → concrete value.  Unbound variables read as 0. *)

val eval : model -> t -> int64

(** {1 Inspection} *)

val fold_vars : ('a -> int -> string -> int -> 'a) -> 'a -> t -> 'a
(** Fold over (id, name, width) of every variable occurrence. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
