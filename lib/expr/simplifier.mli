(** Bitfield-theory expression simplifier (S2E paper, section 5).

    Expressions produced by translating machine code are dominated by
    bit-level operations (flag extraction, masking, shifting).  The
    simplifier combines a bottom-up {e known-bits} analysis — replacing
    fully-determined sub-expressions with constants — and a top-down
    {e demanded-bits} analysis — deleting operations whose only effect is
    on bits the context ignores. *)

(** Known-bits lattice element: [kmask] has a 1 for every statically known
    bit; [kval] holds those bits' values. *)
type bits = { kmask : int64; kval : int64 }

val unknown : bits
val all_known : int -> int64 -> bits
val is_fully_known : int -> bits -> bool

(** Bottom-up known-bits computation for an expression. *)
val known_bits : Expr.t -> bits

(** [demand e mask] rewrites [e] assuming only the bits in [mask] are
    observed; the result agrees with [e] on those bits. *)
val demand : Expr.t -> int64 -> Expr.t

(** Full simplification: demanded-bits rewriting followed by
    known-bits constant replacement.  Preserves evaluation: for every
    model [m], [eval m (simplify e) = eval m e].

    Memoized per domain, keyed by the interned node id (as is the inner
    known-bits analysis, which the constant-replacement pass would
    otherwise recompute at every level of its descent).  Ids are never
    reused and both functions are pure, so hits cannot be stale; tables
    are bounded and reset past a cap. *)
val simplify : Expr.t -> Expr.t

val simplify_uncached : Expr.t -> Expr.t
(** Same rewrite with every memo table bypassed — the reference
    implementation for differential tests. *)
