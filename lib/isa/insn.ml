(** The guest instruction set.

    A 32-bit RISC-like ISA standing in for x86 in the paper's prototype.
    Memory is byte-addressed, little-endian.  There are 16 registers:
    [r0]–[r11] are general purpose, [r12] = frame pointer, [r13] = stack
    pointer, [r14] = link register and [r15] is a hard-wired zero register.

    Every instruction is encoded in 8 bytes:
    [opcode, rd, rs1, rs2, imm(4 bytes, little-endian)].  The fixed size
    keeps the dynamic translator and the assembler simple, which is fine
    because the guest ISA is a substrate, not a contribution. *)

let num_regs = 16
let reg_fp = 12
let reg_sp = 13
let reg_lr = 14
let reg_zero = 15
let insn_size = 8

let reg_name r =
  match r with
  | 12 -> "fp"
  | 13 -> "sp"
  | 14 -> "lr"
  | 15 -> "zr"
  | r -> Printf.sprintf "r%d" r

(** Three-operand ALU operations, register and immediate forms. *)
type alu =
  | Add | Sub | Mul | Divu | Remu
  | And | Or | Xor
  | Shl | Shr | Sar
  | Slt  (** signed less-than, result 0/1 *)
  | Sltu (** unsigned less-than, result 0/1 *)
  | Seq  (** equality, result 0/1 *)

type branch_cond = Beq | Bne | Blt | Bge | Bltu | Bgeu

(** Subcodes of the S2E custom opcode (paper section 4.2): the guest-side
    interface to the engine.  These are the analogue of S2SYM / S2ENA /
    S2DIS / S2OUT. *)
type s2e_op =
  | Sym_reg     (** rs1 <- fresh symbolic value; imm = name tag *)
  | Sym_mem     (** mem[rs1 .. rs1+rs2) bytes become symbolic; imm = tag *)
  | Enable_mp   (** enable multi-path (symbolic) execution *)
  | Disable_mp  (** disable multi-path execution *)
  | Print       (** log rs1 (debugging aid, S2OUT) *)
  | Kill_path   (** terminate this path; imm = status *)
  | Assert_op   (** report a bug if rs1 = 0 *)
  | Concretize  (** force rs1 to a single concrete value *)
  | Disable_irq (** suppress timer interrupts for this path (section 5) *)
  | Enable_irq

type t =
  | Alu of { op : alu; rd : int; rs1 : int; rs2 : int }
  | Alui of { op : alu; rd : int; rs1 : int; imm : int32 }
  | Li of { rd : int; imm : int32 }
  | Mov of { rd : int; rs1 : int }
  | Lw of { rd : int; base : int; off : int32 }
  | Lb of { rd : int; base : int; off : int32 }  (* zero-extending *)
  | Sw of { src : int; base : int; off : int32 }
  | Sb of { src : int; base : int; off : int32 }
  | Jmp of { target : int32 }
  | Jr of { rs1 : int }
  | Jal of { target : int32 }  (* lr <- pc + 8 *)
  | Jalr of { rs1 : int }
  | Branch of { cond : branch_cond; rs1 : int; rs2 : int; target : int32 }
  | In of { rd : int; port : int; port_off : int32 }  (* port = rs1 + imm *)
  | Out of { src : int; port : int; port_off : int32 }
  | Syscall
  | Sysret
  | Iret
  | Halt
  | Cli
  | Sti
  | Nop
  | S2e of { op : s2e_op; rs1 : int; rs2 : int; imm : int32 }

let alu_code = function
  | Add -> 0 | Sub -> 1 | Mul -> 2 | Divu -> 3 | Remu -> 4
  | And -> 5 | Or -> 6 | Xor -> 7 | Shl -> 8 | Shr -> 9 | Sar -> 10
  | Slt -> 11 | Sltu -> 12 | Seq -> 13

let alu_of_code = function
  | 0 -> Add | 1 -> Sub | 2 -> Mul | 3 -> Divu | 4 -> Remu
  | 5 -> And | 6 -> Or | 7 -> Xor | 8 -> Shl | 9 -> Shr | 10 -> Sar
  | 11 -> Slt | 12 -> Sltu | 13 -> Seq
  | c -> invalid_arg (Printf.sprintf "alu_of_code %d" c)

let branch_code = function
  | Beq -> 0 | Bne -> 1 | Blt -> 2 | Bge -> 3 | Bltu -> 4 | Bgeu -> 5

let branch_of_code = function
  | 0 -> Beq | 1 -> Bne | 2 -> Blt | 3 -> Bge | 4 -> Bltu | 5 -> Bgeu
  | c -> invalid_arg (Printf.sprintf "branch_of_code %d" c)

let s2e_code = function
  | Sym_reg -> 0 | Sym_mem -> 1 | Enable_mp -> 2 | Disable_mp -> 3
  | Print -> 4 | Kill_path -> 5 | Assert_op -> 6 | Concretize -> 7
  | Disable_irq -> 8 | Enable_irq -> 9

let s2e_of_code = function
  | 0 -> Sym_reg | 1 -> Sym_mem | 2 -> Enable_mp | 3 -> Disable_mp
  | 4 -> Print | 5 -> Kill_path | 6 -> Assert_op | 7 -> Concretize
  | 8 -> Disable_irq | 9 -> Enable_irq
  | c -> invalid_arg (Printf.sprintf "s2e_of_code %d" c)

exception Invalid_instruction of int

(* Opcode bytes. *)
let op_alu = 0x01 (* + alu code in a second field *)
let op_alui = 0x02
let op_li = 0x03
let op_mov = 0x04
let op_lw = 0x10
let op_lb = 0x11
let op_sw = 0x12
let op_sb = 0x13
let op_jmp = 0x20
let op_jr = 0x21
let op_jal = 0x22
let op_jalr = 0x23
let op_branch = 0x24
let op_in = 0x30
let op_out = 0x31
let op_syscall = 0x40
let op_sysret = 0x41
let op_iret = 0x42
let op_halt = 0x43
let op_cli = 0x44
let op_sti = 0x45
let op_nop = 0x46
let op_s2e = 0x50

(** Encode to 8 bytes at [buf.(off)].  The [rd] byte doubles as a function
    code for ALU, branch and S2E opcodes, with the real [rd] packed in the
    high nibble when both are needed. *)
let encode insn buf off =
  let set op rd rs1 rs2 imm =
    Bytes.set buf off (Char.chr op);
    Bytes.set buf (off + 1) (Char.chr (rd land 0xff));
    Bytes.set buf (off + 2) (Char.chr (rs1 land 0xff));
    Bytes.set buf (off + 3) (Char.chr (rs2 land 0xff));
    Bytes.set_int32_le buf (off + 4) imm
  in
  match insn with
  | Alu { op; rd; rs1; rs2 } ->
      set op_alu (rd lor (alu_code op lsl 4)) rs1 rs2 0l
  | Alui { op; rd; rs1; imm } ->
      set op_alui (rd lor (alu_code op lsl 4)) rs1 0 imm
  | Li { rd; imm } -> set op_li rd 0 0 imm
  | Mov { rd; rs1 } -> set op_mov rd rs1 0 0l
  | Lw { rd; base; off = o } -> set op_lw rd base 0 o
  | Lb { rd; base; off = o } -> set op_lb rd base 0 o
  | Sw { src; base; off = o } -> set op_sw 0 base src o
  | Sb { src; base; off = o } -> set op_sb 0 base src o
  | Jmp { target } -> set op_jmp 0 0 0 target
  | Jr { rs1 } -> set op_jr 0 rs1 0 0l
  | Jal { target } -> set op_jal 0 0 0 target
  | Jalr { rs1 } -> set op_jalr 0 rs1 0 0l
  | Branch { cond; rs1; rs2; target } ->
      set op_branch (branch_code cond) rs1 rs2 target
  | In { rd; port; port_off } -> set op_in rd port 0 port_off
  | Out { src; port; port_off } -> set op_out 0 port src port_off
  | Syscall -> set op_syscall 0 0 0 0l
  | Sysret -> set op_sysret 0 0 0 0l
  | Iret -> set op_iret 0 0 0 0l
  | Halt -> set op_halt 0 0 0 0l
  | Cli -> set op_cli 0 0 0 0l
  | Sti -> set op_sti 0 0 0 0l
  | Nop -> set op_nop 0 0 0 0l
  | S2e { op; rs1; rs2; imm } -> set op_s2e (s2e_code op) rs1 rs2 imm

(** Decode 8 bytes starting at [get off].  [get] abstracts the memory so
    both the VM and the engine can share the decoder. *)
let decode_with ~(get : int -> int) off =
  let opc = get off in
  let b1 = get (off + 1) in
  let rs1 = get (off + 2) in
  let rs2 = get (off + 3) in
  let imm =
    Int32.logor
      (Int32.of_int (get (off + 4) lor (get (off + 5) lsl 8) lor (get (off + 6) lsl 16)))
      (Int32.shift_left (Int32.of_int (get (off + 7))) 24)
  in
  (* Invalid subcodes (ALU op, branch condition, S2E op) are decoding
     errors of the same class as an unknown opcode: raise the typed
     exception, never [Invalid_argument], so decoding arbitrary bytes
     has exactly one failure mode. *)
  let alu_op c = if c < 0 || c > 13 then raise (Invalid_instruction opc) else alu_of_code c in
  let br_cond c = if c > 5 then raise (Invalid_instruction opc) else branch_of_code c in
  let s2e_op c = if c > 9 then raise (Invalid_instruction opc) else s2e_of_code c in
  match opc with
  | o when o = op_alu ->
      Alu { op = alu_op (b1 lsr 4); rd = b1 land 0xf; rs1; rs2 }
  | o when o = op_alui ->
      Alui { op = alu_op (b1 lsr 4); rd = b1 land 0xf; rs1; imm }
  | o when o = op_li -> Li { rd = b1 land 0xf; imm }
  | o when o = op_mov -> Mov { rd = b1 land 0xf; rs1 }
  | o when o = op_lw -> Lw { rd = b1 land 0xf; base = rs1; off = imm }
  | o when o = op_lb -> Lb { rd = b1 land 0xf; base = rs1; off = imm }
  | o when o = op_sw -> Sw { src = rs2; base = rs1; off = imm }
  | o when o = op_sb -> Sb { src = rs2; base = rs1; off = imm }
  | o when o = op_jmp -> Jmp { target = imm }
  | o when o = op_jr -> Jr { rs1 }
  | o when o = op_jal -> Jal { target = imm }
  | o when o = op_jalr -> Jalr { rs1 }
  | o when o = op_branch ->
      Branch { cond = br_cond (b1 land 0xf); rs1; rs2; target = imm }
  | o when o = op_in -> In { rd = b1 land 0xf; port = rs1; port_off = imm }
  | o when o = op_out -> Out { src = rs2; port = rs1; port_off = imm }
  | o when o = op_syscall -> Syscall
  | o when o = op_sysret -> Sysret
  | o when o = op_iret -> Iret
  | o when o = op_halt -> Halt
  | o when o = op_cli -> Cli
  | o when o = op_sti -> Sti
  | o when o = op_nop -> Nop
  | o when o = op_s2e -> S2e { op = s2e_op (b1 land 0xf); rs1; rs2; imm }
  | o -> raise (Invalid_instruction o)

let decode (buf : Bytes.t) off =
  decode_with ~get:(fun i -> Char.code (Bytes.get buf i)) off

(** Does this instruction end a translation block? *)
let is_block_terminator = function
  | Jmp _ | Jr _ | Jal _ | Jalr _ | Branch _ | Syscall | Sysret | Iret | Halt
    ->
      true
  | Alu _ | Alui _ | Li _ | Mov _ | Lw _ | Lb _ | Sw _ | Sb _ | In _ | Out _
  | Cli | Sti | Nop | S2e _ ->
      false

let alu_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Divu -> "divu"
  | Remu -> "remu" | And -> "and" | Or -> "or" | Xor -> "xor"
  | Shl -> "shl" | Shr -> "shr" | Sar -> "sar" | Slt -> "slt"
  | Sltu -> "sltu" | Seq -> "seq"

let branch_name = function
  | Beq -> "beq" | Bne -> "bne" | Blt -> "blt" | Bge -> "bge"
  | Bltu -> "bltu" | Bgeu -> "bgeu"

let s2e_name = function
  | Sym_reg -> "s2e.symreg" | Sym_mem -> "s2e.symmem"
  | Enable_mp -> "s2e.enable" | Disable_mp -> "s2e.disable"
  | Print -> "s2e.print" | Kill_path -> "s2e.kill"
  | Assert_op -> "s2e.assert" | Concretize -> "s2e.concretize"
  | Disable_irq -> "s2e.cli" | Enable_irq -> "s2e.sti"

let pp ppf insn =
  let r = reg_name in
  match insn with
  | Alu { op; rd; rs1; rs2 } ->
      Fmt.pf ppf "%s %s, %s, %s" (alu_name op) (r rd) (r rs1) (r rs2)
  | Alui { op; rd; rs1; imm } ->
      Fmt.pf ppf "%si %s, %s, %ld" (alu_name op) (r rd) (r rs1) imm
  | Li { rd; imm } -> Fmt.pf ppf "li %s, %ld" (r rd) imm
  | Mov { rd; rs1 } -> Fmt.pf ppf "mov %s, %s" (r rd) (r rs1)
  | Lw { rd; base; off } -> Fmt.pf ppf "lw %s, %ld(%s)" (r rd) off (r base)
  | Lb { rd; base; off } -> Fmt.pf ppf "lb %s, %ld(%s)" (r rd) off (r base)
  | Sw { src; base; off } -> Fmt.pf ppf "sw %s, %ld(%s)" (r src) off (r base)
  | Sb { src; base; off } -> Fmt.pf ppf "sb %s, %ld(%s)" (r src) off (r base)
  | Jmp { target } -> Fmt.pf ppf "jmp 0x%lx" target
  | Jr { rs1 } -> Fmt.pf ppf "jr %s" (r rs1)
  | Jal { target } -> Fmt.pf ppf "jal 0x%lx" target
  | Jalr { rs1 } -> Fmt.pf ppf "jalr %s" (r rs1)
  | Branch { cond; rs1; rs2; target } ->
      Fmt.pf ppf "%s %s, %s, 0x%lx" (branch_name cond) (r rs1) (r rs2) target
  | In { rd; port; port_off } ->
      Fmt.pf ppf "in %s, %ld(%s)" (r rd) port_off (r port)
  | Out { src; port; port_off } ->
      Fmt.pf ppf "out %s, %ld(%s)" (r src) port_off (r port)
  | Syscall -> Fmt.string ppf "syscall"
  | Sysret -> Fmt.string ppf "sysret"
  | Iret -> Fmt.string ppf "iret"
  | Halt -> Fmt.string ppf "halt"
  | Cli -> Fmt.string ppf "cli"
  | Sti -> Fmt.string ppf "sti"
  | Nop -> Fmt.string ppf "nop"
  | S2e { op; rs1; rs2; imm } ->
      Fmt.pf ppf "%s %s, %s, %ld" (s2e_name op) (r rs1) (r rs2) imm

let to_string i = Fmt.str "%a" pp i
