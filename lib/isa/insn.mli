(** The guest instruction set.

    A 32-bit RISC-like ISA standing in for x86 in the paper's prototype.
    Memory is byte-addressed, little-endian.  Sixteen registers: [r0]–[r11]
    general purpose, [r12] frame pointer, [r13] stack pointer, [r14] link
    register, [r15] hard-wired zero.  Every instruction encodes to 8 bytes:
    [opcode, rd, rs1, rs2, imm32]. *)

val num_regs : int
val reg_fp : int
val reg_sp : int
val reg_lr : int
val reg_zero : int
val insn_size : int
val reg_name : int -> string

type alu =
  | Add | Sub | Mul | Divu | Remu
  | And | Or | Xor
  | Shl | Shr | Sar
  | Slt  (** signed less-than, result 0/1 *)
  | Sltu (** unsigned less-than, result 0/1 *)
  | Seq  (** equality, result 0/1 *)

type branch_cond = Beq | Bne | Blt | Bge | Bltu | Bgeu

(** Subcodes of the S2E custom opcode (paper section 4.2): the guest-side
    interface to the engine — the analogue of S2SYM/S2ENA/S2DIS/S2OUT. *)
type s2e_op =
  | Sym_reg     (** rs1 ← fresh symbolic value; imm = name tag *)
  | Sym_mem     (** mem[rs1, rs1+rs2) becomes symbolic; imm = tag *)
  | Enable_mp
  | Disable_mp
  | Print
  | Kill_path
  | Assert_op   (** report a bug when rs1 = 0 *)
  | Concretize
  | Disable_irq
  | Enable_irq

type t =
  | Alu of { op : alu; rd : int; rs1 : int; rs2 : int }
  | Alui of { op : alu; rd : int; rs1 : int; imm : int32 }
  | Li of { rd : int; imm : int32 }
  | Mov of { rd : int; rs1 : int }
  | Lw of { rd : int; base : int; off : int32 }
  | Lb of { rd : int; base : int; off : int32 } (** zero-extending *)
  | Sw of { src : int; base : int; off : int32 }
  | Sb of { src : int; base : int; off : int32 }
  | Jmp of { target : int32 }
  | Jr of { rs1 : int }
  | Jal of { target : int32 } (** lr ← pc + 8 *)
  | Jalr of { rs1 : int }
  | Branch of { cond : branch_cond; rs1 : int; rs2 : int; target : int32 }
  | In of { rd : int; port : int; port_off : int32 } (** port = rs1 + imm *)
  | Out of { src : int; port : int; port_off : int32 }
  | Syscall
  | Sysret
  | Iret
  | Halt
  | Cli
  | Sti
  | Nop
  | S2e of { op : s2e_op; rs1 : int; rs2 : int; imm : int32 }

val alu_code : alu -> int
val alu_of_code : int -> alu
val branch_code : branch_cond -> int
val branch_of_code : int -> branch_cond
val s2e_code : s2e_op -> int
val s2e_of_code : int -> s2e_op

exception Invalid_instruction of int

val op_alu : int
val op_alui : int
val op_li : int
val op_mov : int
val op_lw : int
val op_lb : int
val op_sw : int
val op_sb : int
val op_jmp : int
val op_jr : int
val op_jal : int
val op_jalr : int
val op_branch : int
val op_in : int
val op_out : int
val op_syscall : int
val op_sysret : int
val op_iret : int
val op_halt : int
val op_cli : int
val op_sti : int
val op_nop : int
val op_s2e : int

val encode : t -> Bytes.t -> int -> unit
(** Encode 8 bytes at an offset. *)

val decode_with : get:(int -> int) -> int -> t
(** Decode from an abstract byte source (shared by the VM and the
    engine).  @raise Invalid_instruction on unknown opcodes and on known
    opcodes carrying an invalid subcode (ALU op, branch condition, S2E
    op) — the only exception decoding arbitrary bytes can raise. *)

val decode : Bytes.t -> int -> t

val is_block_terminator : t -> bool
(** Does this instruction end a translation block? *)

val alu_name : alu -> string
val branch_name : branch_cond -> string
val s2e_name : s2e_op -> string
val pp : Format.formatter -> t -> unit
val to_string : t -> string
