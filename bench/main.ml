(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (section 6), plus the ablations called out in DESIGN.md.

   Usage:  dune exec bench/main.exe [-- experiment ...]
   Experiments: table4 table5 table6 fig6 fig7 fig8 fig9 ddt profs-url
   profs-ping overhead pagesize ablate parallel merge breakdown solver dist
   chaos expr oracle all (default: all).  The per-run budget can be scaled
   with S2E_BENCH_SECONDS (default 12). *)

open S2e_core
open S2e_tools
module Guest = S2e_guest.Guest
module Solver = S2e_solver.Solver
module Expr = S2e_expr.Expr

let section title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "================================================================\n%!"

let budget =
  match Sys.getenv_opt "S2E_BENCH_SECONDS" with
  | Some s -> float_of_string s
  | None -> 12.0

(* ---------------------------------------------------------------- *)
(* Table 4: comparative productivity (tool LOC on top of the platform) *)
(* ---------------------------------------------------------------- *)

let count_loc path =
  try
    let ic = open_in path in
    let n = ref 0 in
    (try
       while true do
         let line = String.trim (input_line ic) in
         if
           line <> ""
           && not (String.length line >= 2 && String.sub line 0 2 = "(*")
         then incr n
       done
     with End_of_file -> ());
    close_in ic;
    !n
  with Sys_error _ -> 0

let dir_loc dir =
  try
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".ml")
    |> List.fold_left (fun acc f -> acc + count_loc (Filename.concat dir f)) 0
  with Sys_error _ -> 0

let table4 () =
  section "Table 4: productivity — tool complexity with vs without the platform";
  let platform =
    List.fold_left
      (fun acc d -> acc + dir_loc (Filename.concat "lib" d))
      0
      [ "expr"; "solver"; "isa"; "vm"; "dbt"; "cc"; "core"; "plugins";
        "cachesim"; "guest" ]
  in
  let tools =
    [
      ("Testing of device drivers (DDT+)", "lib/tools/ddt.ml");
      ("Reverse engineering (REV+)", "lib/tools/rev.ml");
      ("Multi-path performance profiling (PROFS)", "lib/tools/profs.ml");
    ]
  in
  Printf.printf "%-45s %10s %14s\n" "Use case" "tool LOC" "platform LOC";
  List.iter
    (fun (name, path) ->
      Printf.printf "%-45s %10d %14d\n" name (count_loc path) platform)
    tools;
  Printf.printf
    "\nPaper's shape: each tool built on the platform is orders of magnitude\n\
     smaller than a from-scratch implementation (47-57 KLOC in the paper);\n\
     here each tool is a few hundred lines over a %d-line platform.\n"
    platform

(* ---------------------------------------------------------------- *)
(* Table 5 + Fig 6: REV+ coverage vs the RevNIC baseline, over time   *)
(* ---------------------------------------------------------------- *)

let rev_drivers = [ "pcnet"; "rtl8029"; "c111"; "rtl8139" ]

let table5 () =
  section "Table 5: basic-block coverage, RevNIC baseline vs REV+ (same budget)";
  Printf.printf "%-10s %10s %10s %14s\n" "Driver" "RevNIC" "REV+" "Improvement";
  List.iter
    (fun driver ->
      let base = Rev.run ~max_seconds:budget ~mode:`Revnic_baseline ~driver () in
      let plus = Rev.run ~max_seconds:budget ~mode:`Rev_plus ~driver () in
      Printf.printf "%-10s %9.0f%% %9.0f%% %+13.0f%%\n%!"
        (Guest.driver_display_name driver)
        (100. *. base.coverage) (100. *. plus.coverage)
        (100. *. (plus.coverage -. base.coverage)))
    rev_drivers;
  Printf.printf
    "\nPaper's shape: REV+ >= RevNIC on every driver (paper: +2 to +7%%).\n"

let fig6 () =
  section "Figure 6: basic-block coverage over time for REV+ (per driver)";
  List.iter
    (fun driver ->
      let r = Rev.run ~max_seconds:budget ~driver () in
      Printf.printf "\n%s (%d/%d insns covered):\n"
        (Guest.driver_display_name driver)
        r.covered_insns r.total_insns;
      let tl = r.timeline in
      let n = List.length tl in
      let step = max 1 (n / 12) in
      List.iteri
        (fun i (instret, cov) ->
          if i mod step = 0 || i = n - 1 then
            Printf.printf "  %10d instrs  %5.1f%%\n" instret (100. *. cov))
        tl;
      Printf.printf "%!")
    rev_drivers;
  Printf.printf
    "\nPaper's shape: coverage rises steeply then plateaus; PCnet plateaus\n\
     lowest among the four drivers.\n"

(* ---------------------------------------------------------------- *)
(* Table 6 + Figs 7, 8, 9: consistency-model trade-offs               *)
(* ---------------------------------------------------------------- *)

let model_targets = [ `Driver "c111"; `Driver "pcnet"; `Mua ]
let models = Consistency.[ RC_OC; LC; SC_SE; SC_UE ]

let run_target target model =
  match target, model with
  | `Mua, Consistency.SC_UE -> None (* the paper leaves this cell empty *)
  | `Mua, _ -> Some (Model_exp.run_mua ~max_seconds:budget ~consistency:model ())
  | `Driver d, _ ->
      Some (Model_exp.run_driver ~max_seconds:budget ~driver:d ~consistency:model ())

let collect_measurements () =
  List.map
    (fun target ->
      let name =
        match target with
        | `Driver d -> Guest.driver_display_name d
        | `Mua -> "Mua"
      in
      ( name,
        List.filter_map
          (fun m -> run_target target m |> Option.map (fun r -> (m, r)))
          models ))
    model_targets

let measurements = lazy (collect_measurements ())

let table6 () =
  section "Table 6: time (s) to finish the exploration experiment per model";
  let ms = Lazy.force measurements in
  Printf.printf "%-12s" "Model";
  List.iter (fun (name, _) -> Printf.printf " %14s" name) ms;
  print_newline ();
  List.iter
    (fun model ->
      Printf.printf "%-12s" (Consistency.name model);
      List.iter
        (fun (_, results) ->
          match List.assoc_opt model results with
          | Some r ->
              Printf.printf " %12.1f%s" r.Model_exp.seconds
                (if r.finished then " " else "*")
          | None -> Printf.printf " %14s" "-")
        ms;
      print_newline ())
    models;
  Printf.printf
    "(* = budget cap reached)\n\
     Paper's shape: RC-OC/LC/SC-SE take the same order of magnitude;\n\
     SC-UE finishes almost immediately because the driver fails to load.\n"

let fig7 () =
  section "Figure 7: effect of consistency models on basic-block coverage";
  let ms = Lazy.force measurements in
  Printf.printf "%-12s" "Model";
  List.iter (fun (name, _) -> Printf.printf " %10s" name) ms;
  print_newline ();
  List.iter
    (fun model ->
      Printf.printf "%-12s" (Consistency.name model);
      List.iter
        (fun (_, results) ->
          match List.assoc_opt model results with
          | Some r -> Printf.printf " %9.1f%%" (100. *. r.Model_exp.coverage)
          | None -> Printf.printf " %10s" "-")
        ms;
      print_newline ())
    models;
  Printf.printf
    "Paper's shape: weaker models reach higher driver coverage; SC-UE is\n\
     dramatically worse (the driver fails to load); for the interpreter,\n\
     LC wins (it bypasses the lexer) and RC-OC lags (crash paths).\n"

let fig8 () =
  section "Figure 8: effect of consistency models on memory usage";
  let ms = Lazy.force measurements in
  Printf.printf "%-12s" "Model";
  List.iter (fun (name, _) -> Printf.printf " %12s" name) ms;
  print_newline ();
  List.iter
    (fun model ->
      Printf.printf "%-12s" (Consistency.name model);
      List.iter
        (fun (_, results) ->
          match List.assoc_opt model results with
          | Some r -> Printf.printf " %12d" r.Model_exp.mem_watermark
          | None -> Printf.printf " %12s" "-")
        ms;
      print_newline ())
    models;
  Printf.printf
    "(state-footprint words, high watermark over live states)\n\
     Paper's shape: LC keeps more state alive than RC-OC on PCnet;\n\
     SC-UE uses almost nothing.\n"

let fig9 () =
  section "Figure 9: impact of consistency models on constraint solving";
  let ms = Lazy.force measurements in
  Printf.printf "%-12s" "Model";
  List.iter (fun (name, _) -> Printf.printf " %22s" name) ms;
  print_newline ();
  Printf.printf "%-12s" "";
  List.iter (fun _ -> Printf.printf " %12s %9s" "solver%" "ms/query") ms;
  print_newline ();
  List.iter
    (fun model ->
      Printf.printf "%-12s" (Consistency.name model);
      List.iter
        (fun (_, results) ->
          match List.assoc_opt model results with
          | Some r ->
              Printf.printf " %11.0f%% %9.3f"
                (100. *. r.Model_exp.solver_fraction)
                r.Model_exp.avg_query_ms
          | None -> Printf.printf " %12s %9s" "-" "-")
        ms;
      print_newline ())
    models;
  Printf.printf
    "Paper's shape: stricter models restrict symbolic data, lowering the\n\
     solver share; the interpreter spends most of its time in the solver.\n"

(* ---------------------------------------------------------------- *)
(* Section 6.1.1: DDT+ bug finding                                    *)
(* ---------------------------------------------------------------- *)

let ddt () =
  section "Section 6.1.1: DDT+ on PCnet and RTL8029 (seeded-bug recall)";
  let total model =
    List.fold_left
      (fun acc driver ->
        let r = Ddt.run ~max_seconds:(budget *. 2.) ~driver ~consistency:model () in
        Printf.printf "\n%s under %s: %d paths in %.1fs, %.0f%% coverage\n"
          (Guest.driver_display_name driver)
          (Consistency.name model) r.paths r.seconds (100. *. r.coverage);
        List.iter
          (fun (b : Ddt.bug_report) ->
            Printf.printf "  [%s] pc=0x%x  %s\n" b.kind b.pc b.message)
          r.bugs;
        acc + Ddt.seeded_bug_count r)
      0 [ "pcnet"; "rtl8029" ]
  in
  let scse = total Consistency.SC_SE in
  let lc = total Consistency.LC in
  Printf.printf
    "\nTotal distinct bugs: %d under SC-SE, %d under LC.\n\
     Paper: 7 bugs; 2 findable under SC-SE, relaxing to LC finds 5 more.\n"
    scse lc

(* ---------------------------------------------------------------- *)
(* Section 6.1.3: PROFS                                               *)
(* ---------------------------------------------------------------- *)

let profs_url () =
  section "Section 6.1.3: PROFS on the URL parser (multi-path profile)";
  let r =
    Profs.run ~max_seconds:(budget *. 2.)
      ~workload:("urlparse", S2e_guest.Workloads_src.urlparse)
      ()
  in
  let done_paths = Profs.completed r in
  Printf.printf "explored %d paths (%d completed) in %.1fs (%.1fs in solver)\n"
    (List.length r.paths) (List.length done_paths) r.seconds r.solver_seconds;
  let pts =
    List.map
      (fun p ->
        ( float_of_int (Profs.count_input_byte p ~prefix:"sym1" (Char.code '/')),
          float_of_int p.Profs.p_instructions ))
      done_paths
  in
  (match Profs.regression pts with
  | Some (slope, intercept) ->
      Printf.printf "instructions(path) ~= %.1f * (#'/' chars) + %.0f\n" slope
        intercept
  | None -> print_endline "regression unavailable");
  let misses =
    List.map (fun p -> p.Profs.p_i1_misses + p.Profs.p_d1_misses) done_paths
  in
  (match misses with
  | [] -> ()
  | m :: _ ->
      let lo = List.fold_left min m misses
      and hi = List.fold_left max m misses in
      let mean =
        float_of_int (List.fold_left ( + ) 0 misses)
        /. float_of_int (List.length misses)
      in
      Printf.printf "L1 cache misses per path: %.0f +- %d (range %d..%d)\n" mean
        ((hi - lo) / 2) lo hi);
  Printf.printf
    "Paper's shape: a fixed extra instruction cost per '/' character (10 in\n\
     the paper) and a near-constant cache-miss count across paths.\n"

let profs_ping () =
  section "Section 6.1.3: PROFS on ping (performance envelope + loop bug)";
  let reply = Array.make 28 0 in
  reply.(0) <- 0x45;
  let driver = ("pcnet", List.assoc "pcnet" Guest.drivers) in
  let buggy =
    Profs.run ~max_seconds:(budget *. 2.) ~driver ~frames:[ reply ]
      ~workload:("ping", S2e_guest.Workloads_src.ping ~buggy:true)
      ()
  in
  Printf.printf "unpatched ping: %d paths, %d killed, infinite loop %s\n"
    (List.length buggy.paths) buggy.killed_paths
    (if buggy.unbounded then "DETECTED (record-route option, length < 4)"
     else "not detected");
  let fixed =
    Profs.run ~max_seconds:(budget *. 2.) ~driver ~frames:[ reply ]
      ~workload:("ping", S2e_guest.Workloads_src.ping ~buggy:false)
      ()
  in
  (match Profs.envelope fixed with
  | Some (lo, hi) ->
      Printf.printf
        "patched ping: %d paths, performance envelope [%d, %d] instructions\n"
        (List.length fixed.paths) lo hi
  | None -> print_endline "patched ping: no completed paths");
  let pf =
    List.fold_left
      (fun acc p -> max acc p.Profs.p_page_faults)
      0 (Profs.completed fixed)
  in
  Printf.printf "max page faults on any path: %d\n" pf;
  Printf.printf
    "Paper's shape: the unpatched client has no execution-time bound (a\n\
     malicious host can hang it); after the patch the envelope is finite\n\
     (paper: [1645, 129086] instructions).\n"

(* ---------------------------------------------------------------- *)
(* Section 6.2: runtime overhead (Bechamel microbenchmarks)           *)
(* ---------------------------------------------------------------- *)

(* Constant symbolic work per iteration (each value derives from the input
   by a bounded expression), so the measurement reflects per-instruction
   interpretation cost rather than unbounded expression growth. *)
let overhead_workload symbolic =
  Printf.sprintf
    {|
char sink[8];
int main() {
  int x = %s;
  for (int i = 0; i < 400; i = i + 1) {
    int t = ((x >> (i & 7)) ^ i) * 3;
    t = t ^ (t >> 3);
    // In symbolic mode this branch needs a solver feasibility check (the
    // taken side is infeasible); in concrete mode the condition folds to
    // a constant for free.
    if ((i & 15) == 0 && (t & 0xFF) > 300) sink[0] = 1;
    sink[i & 7] = t;
  }
  return sink[0] & 0;
}
|}
    (if symbolic then "__s2e_sym_int(1)" else "17")

let build_concrete_machine () =
  let img =
    Guest.build
      ~driver:("nulldrv", S2e_guest.Drivers_src.nulldrv)
      ~workload:("bench", overhead_workload false)
      ()
  in
  fun () ->
    let m = S2e_vm.Machine.create () in
    Guest.load_into_machine m img;
    ignore (S2e_vm.Machine.run ~fuel:100_000 m)

let build_engine_runner symbolic =
  let img =
    Guest.build
      ~driver:("nulldrv", S2e_guest.Drivers_src.nulldrv)
      ~workload:("bench", overhead_workload symbolic)
      ()
  in
  fun () ->
    let config = Executor.default_config () in
    config.consistency <- Consistency.LC;
    let engine = Executor.create ~config () in
    Guest.load_into_engine engine img;
    Executor.set_unit engine [ "bench" ];
    let s0 = Executor.boot engine ~entry:img.entry () in
    ignore
      (Executor.run
         ~limits:
           {
             Executor.max_instructions = Some 100_000;
             max_seconds = Some 10.0;
             max_completed = None;
           }
         engine s0)

let overhead () =
  section "Section 6.2: runtime overhead (vanilla VM vs engine modes)";
  let open Bechamel in
  let vanilla = build_concrete_machine () in
  let concrete = build_engine_runner false in
  let symbolic = build_engine_runner true in
  let tests =
    Test.make_grouped ~name:"overhead" ~fmt:"%s %s"
      [
        Test.make ~name:"vanilla-vm" (Staged.stage vanilla);
        Test.make ~name:"engine-concrete" (Staged.stage concrete);
        Test.make ~name:"engine-symbolic" (Staged.stage symbolic);
      ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 2.0) ~kde:(Some 50) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let time_of name =
    match Hashtbl.find_opt results ("overhead " ^ name) with
    | Some est -> (
        match Analyze.OLS.estimates est with Some [ t ] -> t | _ -> nan)
    | None -> nan
  in
  let t_vanilla = time_of "vanilla-vm" in
  let t_concrete = time_of "engine-concrete" in
  let t_symbolic = time_of "engine-symbolic" in
  Printf.printf "%-18s %14s %10s\n" "Configuration" "ns/run" "overhead";
  Printf.printf "%-18s %14.0f %10s\n" "vanilla VM" t_vanilla "1.0x";
  Printf.printf "%-18s %14.0f %9.1fx\n" "engine, concrete" t_concrete
    (t_concrete /. t_vanilla);
  Printf.printf "%-18s %14.0f %9.1fx\n" "engine, symbolic" t_symbolic
    (t_symbolic /. t_vanilla);
  Printf.printf
    "\nPaper's shape: ~6x overhead in concrete mode, ~78x in symbolic mode.\n\
     Exact factors depend on the substrate; the ordering and the gap\n\
     between the modes are the reproducible part.\n"

(* ---------------------------------------------------------------- *)
(* Section 6.2: symbolic-pointer solver page size                     *)
(* ---------------------------------------------------------------- *)

let pagesize_workload =
  {|
char table[256];
int main() {
  for (int i = 0; i < 256; i = i + 1) table[i] = (i * 37) & 0xFF;
  int x = __s2e_sym_int(1);
  int acc = 0;
  for (int k = 0; k < 6; k = k + 1) {
    int idx = (x >> (k * 4)) & 0xFF;
    acc = acc + table[idx];
    if ((acc & 3) == 0) acc = acc + 1;
  }
  return acc;
}
|}

let pagesize () =
  section "Section 6.2: symbolic-pointer cost vs solver page size";
  Printf.printf "%-10s %8s %10s %12s %12s\n" "page (B)" "paths" "queries"
    "ms/query" "solver s";
  List.iter
    (fun page ->
      Solver.reset_stats ();
      let img =
        Guest.build
          ~driver:("nulldrv", S2e_guest.Drivers_src.nulldrv)
          ~workload:("ptr", pagesize_workload)
          ()
      in
      let config = Executor.default_config () in
      config.consistency <- Consistency.LC;
      config.page_size <- page;
      let engine = Executor.create ~config () in
      Guest.load_into_engine engine img;
      Executor.set_unit engine [ "ptr" ];
      let s0 = Executor.boot engine ~entry:img.entry () in
      ignore
        (Executor.run
           ~limits:
             {
               Executor.max_instructions = None;
               max_seconds = Some budget;
               max_completed = None;
             }
           engine s0);
      let st = Solver.stats in
      Printf.printf "%-10d %8d %10d %12.3f %12.2f\n%!" page
        engine.Executor.stats.states_completed st.queries
        (if st.queries > 0 then
           1000. *. st.total_time /. float_of_int st.queries
         else 0.)
        st.total_time)
    [ 64; 128; 256; 512; 1024 ];
  Printf.printf
    "\nPaper's shape: smaller solver pages mean less symbolic memory per\n\
     query, faster queries and more paths in the same budget (paper: 7082\n\
     paths @256B pages vs 2000 @4KB).\n"

(* ---------------------------------------------------------------- *)
(* Ablations (DESIGN.md section 4)                                    *)
(* ---------------------------------------------------------------- *)

let ablate () =
  section "Ablations: simplifier, slicing, lazy concretization";
  (* Conditions that only known-bits reasoning can fold: with the
     simplifier each branch collapses to a constant and never reaches the
     solver; without it every one costs a feasibility query. *)
  let bitfield_workload =
    {|
int main() {
  int x = __s2e_sym_int(1);
  int hits = 0;
  for (int i = 0; i < 24; i = i + 1) {
    int m = (x << i) | (1 << i);
    if ((m >> i) & 1) hits = hits + 1;
  }
  if (x > 1000) return hits;
  return hits + 1;
}
|}
  in
  let run_simplifier on =
    Solver.reset_stats ();
    let img =
      Guest.build
        ~driver:("nulldrv", S2e_guest.Drivers_src.nulldrv)
        ~workload:("bits", bitfield_workload)
        ()
    in
    let config = Executor.default_config () in
    config.use_simplifier <- on;
    let engine = Executor.create ~config () in
    Guest.load_into_engine engine img;
    Executor.set_unit engine [ "bits" ];
    let s0 = Executor.boot engine ~entry:img.entry () in
    let t0 = Unix.gettimeofday () in
    ignore
      (Executor.run
         ~limits:
           {
             Executor.max_instructions = None;
             max_seconds = Some budget;
             max_completed = None;
           }
         engine s0);
    ( Unix.gettimeofday () -. t0,
      Solver.stats.queries,
      Solver.stats.total_time,
      engine.Executor.stats.states_completed )
  in
  let t_on, q_on, s_on, p_on = run_simplifier true in
  let t_off, q_off, s_off, p_off = run_simplifier false in
  Printf.printf
    "bitfield simplifier ON : %.2fs, %d queries, %.2fs solving, %d paths\n"
    t_on q_on s_on p_on;
  Printf.printf
    "bitfield simplifier OFF: %.2fs, %d queries, %.2fs solving, %d paths\n"
    t_off q_off s_off p_off;
  (* (b) independent-constraint slicing: solver-level microbenchmark *)
  let x = Expr.fresh_var ~width:32 "ax" in
  let unrelated =
    List.init 24 (fun i ->
        let y = Expr.fresh_var ~width:32 (Printf.sprintf "u%d" i) in
        Expr.ult y (Expr.const (Int64.of_int (100 + i))))
  in
  let query = Expr.eq (Expr.mul x (Expr.const 7L)) (Expr.const 91L) in
  let time f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to 50 do
      f ()
    done;
    Unix.gettimeofday () -. t0
  in
  let with_slicing =
    time (fun () ->
        Solver.clear_caches Solver.default_ctx;
        ignore (Solver.check_with ~constraints:unrelated query))
  in
  let without_slicing =
    time (fun () ->
        Solver.clear_caches Solver.default_ctx;
        ignore (Solver.check (query :: unrelated)))
  in
  Printf.printf
    "constraint slicing: %.2f ms/query sliced vs %.2f ms/query unsliced\n"
    (with_slicing *. 20.) (without_slicing *. 20.);
  (* (c) lazy vs eager concretization at the boundary *)
  let lazy_workload =
    {|
char shuttle[8];
int main() {
  __s2e_sym_mem(shuttle, 8, 1);
  char out[8];
  kmemcpy(out, shuttle, 8);
  if (out[0] == 'Z') return 1;
  return 0;
}
|}
  in
  let run_lazy on =
    let img =
      Guest.build
        ~driver:("nulldrv", S2e_guest.Drivers_src.nulldrv)
        ~workload:("shuttle", lazy_workload)
        ()
    in
    let config = Executor.default_config () in
    config.lazy_concretization <- on;
    config.consistency <- Consistency.SC_UE;
    let engine = Executor.create ~config () in
    Guest.load_into_engine engine img;
    Executor.set_unit engine [ "shuttle" ];
    let s0 = Executor.boot engine ~entry:img.entry () in
    Executor.run
      ~limits:
        {
          Executor.max_instructions = Some 2_000_000;
          max_seconds = Some budget;
          max_completed = None;
        }
      engine s0
  in
  Printf.printf
    "lazy concretization: %d paths lazy vs %d paths eager (eager pins the\n\
     buffer at the kmemcpy boundary call, losing the 'Z' path)\n"
    (run_lazy true) (run_lazy false)

(* ---------------------------------------------------------------- *)
(* Parallel exploration: serial vs N workers (ROADMAP scaling item)   *)
(* ---------------------------------------------------------------- *)

(* Solver-heavy multi-path workload: every iteration branches on a
   multiplication of the symbolic inputs, so each of the ~2^9 paths pays
   real SAT time — the component the per-worker solver contexts
   parallelize. *)
let parallel_workload =
  {|
int main() {
  int x = __s2e_sym_int(1);
  int y = __s2e_sym_int(2);
  int acc = 0;
  for (int i = 0; i < 9; i = i + 1) {
    int lhs = (x * 13 + i * 7) & 0xFF;
    int rhs = (y * 11 >> (i & 3)) & 0x7F;
    if (lhs > rhs) acc = acc + i;
    else acc = acc - 1;
  }
  return acc;
}
|}

let parallel () =
  section "Parallel exploration: wall-clock speedup vs worker count";
  let img =
    Guest.build
      ~driver:("nulldrv", S2e_guest.Drivers_src.nulldrv)
      ~workload:("pbench", parallel_workload)
      ()
  in
  let make_engine () =
    let config = Executor.default_config () in
    config.consistency <- Consistency.LC;
    let engine = Executor.create ~config () in
    Guest.load_into_engine engine img;
    Executor.set_unit engine [ "pbench" ];
    engine
  in
  let run jobs =
    Parallel.explore ~jobs
      ~limits:
        {
          Executor.max_instructions = None;
          max_seconds = Some (budget *. 4.);
          max_completed = None;
        }
      ~make_engine
      ~boot:(fun eng -> Executor.boot eng ~entry:img.entry ())
      ()
  in
  let cores = Domain.recommended_domain_count () in
  Printf.printf "available cores: %d\n" cores;
  Printf.printf "%-8s %10s %8s %8s %10s %10s\n" "jobs" "wall (s)" "paths"
    "steals" "solver (s)" "speedup";
  let serial = run 1 in
  let report (r : Parallel.result) =
    Printf.printf "%-8d %10.2f %8d %8d %10.2f %9.2fx\n%!" r.jobs r.wall_seconds
      r.stats.Executor.states_completed r.steals
      r.solver_stats.S2e_solver.Solver.total_time
      (serial.wall_seconds /. r.wall_seconds)
  in
  report serial;
  let results =
    List.map
      (fun jobs ->
        let r = run jobs in
        report r;
        (* The parallel determinism guarantee: same path set as serial. *)
        if
          r.stats.states_completed <> serial.stats.Executor.states_completed
          || r.stats.forks <> serial.stats.forks
        then
          Printf.printf
            "WARNING: worker count changed the explored path set (%d/%d paths, \
             %d/%d forks)\n"
            r.stats.states_completed serial.stats.Executor.states_completed
            r.stats.forks serial.stats.forks;
        r)
      [ 2; 4 ]
  in
  List.iter
    (fun (r : Parallel.result) ->
      Bench_json.emit ~name:"parallel_explore"
        [
          ("jobs", Bench_json.Int r.jobs);
          ("cores", Bench_json.Int cores);
          ("serial_s", Bench_json.Float (serial.wall_seconds, 3));
          ("parallel_s", Bench_json.Float (r.wall_seconds, 3));
          ("speedup", Bench_json.Float (serial.wall_seconds /. r.wall_seconds, 3));
          ("paths", Bench_json.Int r.stats.Executor.states_completed);
          ("steals", Bench_json.Int r.steals);
        ])
    results;
  Printf.printf
    "\nEach worker owns a private searcher + solver context; the only\n\
     shared structure is the steal pool.  Speedup tracks the machine's\n\
     core count (this container reports %d); on a single core the domains\n\
     time-slice and the run degenerates to ~1x or below.\n"
    cores

(* ---------------------------------------------------------------- *)
(* State merging: path reduction at identical case discovery          *)
(* ---------------------------------------------------------------- *)

(* The stock urlparse workload makes 8 input bytes symbolic, far too
   many for plain enumeration to drain (hundreds of thousands of paths)
   — and without the enumerated baseline there is no case set to compare
   the merged run against.  Narrow the symbolic window so both modes
   drain inside the budget while exercising the same parser code the
   merge controller collapses. *)
let merge_narrow_urlparse bytes =
  let src = S2e_guest.Workloads_src.urlparse in
  let wide = "__s2e_sym_mem(url + 8, 8, 1);" in
  let narrow = Printf.sprintf "__s2e_sym_mem(url + 8, %d, 1);" bytes in
  let wl = String.length wide in
  let rec find i =
    if i + wl > String.length src then failwith "urlparse pattern not found"
    else if String.sub src i wl = wide then i
    else find (i + 1)
  in
  let i = find 0 in
  String.sub src 0 i ^ narrow
  ^ String.sub src (i + wl) (String.length src - i - wl)

let merge () =
  section "State merging: completed paths, merged vs enumerated";
  let run img name mode =
    let make_engine () =
      let config = Executor.default_config () in
      config.consistency <- Consistency.LC;
      let engine = Executor.create ~config () in
      Guest.load_into_engine engine img;
      Executor.set_unit engine [ "nulldrv"; name ];
      ignore (S2e_merge.Controller.install ~mode engine);
      engine
    in
    Parallel.explore ~jobs:1 ~make_engine
      ~boot:(fun eng -> Executor.boot eng ~entry:img.Guest.entry ())
      ()
  in
  let case_set (r : Parallel.result) =
    List.concat_map Parallel.test_cases r.Parallel.completed
    |> List.map Parallel.test_case_to_string
    |> List.sort compare
  in
  let fields =
    List.concat_map
      (fun (name, src) ->
        let img =
          Guest.build
            ~driver:("nulldrv", S2e_guest.Drivers_src.nulldrv)
            ~workload:(name, src) ()
        in
        let off = run img name S2e_merge.Policy.Off in
        let auto = run img name S2e_merge.Policy.Auto in
        let po = List.length off.Parallel.completed in
        let pa = List.length auto.Parallel.completed in
        let co = case_set off and ca = case_set auto in
        let equal = co = ca in
        let reduction = float_of_int po /. float_of_int (max 1 pa) in
        Printf.printf
          "%-10s off: %4d paths  auto: %3d paths  %5.1fx fewer  %4d cases %s\n"
          name po pa reduction (List.length co)
          (if equal then "identical" else "DIVERGED");
        [
          (name ^ "_paths_off", Bench_json.Int po);
          (name ^ "_paths_auto", Bench_json.Int pa);
          (name ^ "_reduction", Bench_json.Float (reduction, 1));
          (name ^ "_cases", Bench_json.Int (List.length co));
          (name ^ "_cases_equal", Bench_json.Bool equal);
        ])
      [
        ("urlparse", merge_narrow_urlparse 2);
        ("symloop", S2e_guest.Workloads_src.symloop);
      ]
  in
  Printf.printf
    "\nurlparse runs with a narrowed 2-byte symbolic window so the\n\
     enumerated baseline drains; the merged run must reproduce its case\n\
     set exactly while completing an order of magnitude fewer paths.\n";
  Bench_json.emit ~name:"merge" ~artifact:"merge" fields

(* ---------------------------------------------------------------- *)
(* Telemetry breakdown: Table-5-of-DBT-papers-style time accounting   *)
(* ---------------------------------------------------------------- *)

(* Where does a run's wall-clock go?  Replays the parallel workload
   serially with the lib/obs registry reset, then reads the phase spans'
   exclusive times out of the final snapshot.  The solver fraction is the
   number the paper's Fig. 9 tracks per consistency model. *)
let breakdown () =
  section "Telemetry: per-phase time breakdown of a multi-path run";
  let module Obs = S2e_obs in
  let img =
    Guest.build
      ~driver:("nulldrv", S2e_guest.Drivers_src.nulldrv)
      ~workload:("pbench", parallel_workload)
      ()
  in
  let make_engine () =
    let config = Executor.default_config () in
    config.consistency <- Consistency.LC;
    let engine = Executor.create ~config () in
    Guest.load_into_engine engine img;
    Executor.set_unit engine [ "pbench" ];
    engine
  in
  Obs.Metrics.reset ();
  let t0 = Unix.gettimeofday () in
  let r =
    Parallel.explore ~jobs:1
      ~limits:
        {
          Executor.max_instructions = None;
          max_seconds = Some (budget *. 4.);
          max_completed = None;
        }
      ~make_engine
      ~boot:(fun eng -> Executor.boot eng ~entry:img.entry ())
      ()
  in
  let wall = Unix.gettimeofday () -. t0 in
  let snap = Obs.Metrics.snapshot () in
  let phases =
    List.filter_map
      (fun (name, v) ->
        let n = String.length name in
        if
          n > 8
          && String.sub name 0 6 = "phase."
          && String.sub name (n - 2) 2 = "_s"
        then
          match v with
          | Obs.Metrics.Float s -> Some (String.sub name 6 (n - 8), s)
          | _ -> None
        else None)
      snap
  in
  let accounted = List.fold_left (fun a (_, s) -> a +. s) 0. phases in
  Printf.printf "%d paths in %.2fs wall (%.2fs accounted by phase spans)\n"
    r.stats.Executor.states_completed wall accounted;
  Printf.printf "%-12s %8s %8s\n" "phase" "self (s)" "share";
  List.iter
    (fun (name, s) ->
      Printf.printf "%-12s %8.3f %7.1f%%\n" name s
        (if accounted > 0. then 100. *. s /. accounted else 0.))
    (List.sort (fun (_, a) (_, b) -> compare b a) phases);
  let solver_s =
    try List.assoc "solver" phases with Not_found -> 0.
  in
  let instr = Obs.Metrics.get_int snap "engine.instructions" in
  (* Share of solver wall time spent in queries whose constraint prefix
     was already seen in this context: an upper bound on what incremental
     solving (push/pop over shared prefixes) could save. *)
  let prefix_reuse =
    let st = r.solver_stats in
    if st.Solver.total_time > 0. then
      st.Solver.prefix_reused_time /. st.Solver.total_time
    else 0.
  in
  Bench_json.emit ~name:"breakdown"
    [
      ("paths", Bench_json.Int r.stats.Executor.states_completed);
      ("wall_s", Bench_json.Float (wall, 3));
      ("accounted_s", Bench_json.Float (accounted, 3));
      ( "solver_frac",
        Bench_json.Float ((if accounted > 0. then solver_s /. accounted else 0.), 4) );
      ( "instr_per_sec",
        Bench_json.Float ((if wall > 0. then float_of_int instr /. wall else 0.), 0) );
      ("queries", Bench_json.Int (Obs.Metrics.get_int snap "solver.queries"));
      ( "tb_hit_rate",
        Bench_json.Float
          ( (let h = float_of_int (Obs.Metrics.get_int snap "dbt.tb_hits") in
             let m = float_of_int (Obs.Metrics.get_int snap "dbt.tb_misses") in
             if h +. m > 0. then h /. (h +. m) else 0.),
            4 ) );
      ("prefix_reuse", Bench_json.Float (prefix_reuse, 4));
    ];
  Printf.printf
    "\nThe solver share dominating a symbolic workload (and execute\n\
     dominating a concrete one) is the paper's Fig. 9 shape; phase spans\n\
     subtract nested time, so the shares sum to ~100%%.\n"

(* ---------------------------------------------------------------- *)
(* Solver: fresh vs incremental SAT core on the breakdown workload    *)
(* ---------------------------------------------------------------- *)

(* The incremental acceptance experiment: the same serial multi-path run
   once with per-query throwaway SAT instances (--solver=fresh) and once
   with the assumption-stack instance ring (--solver=incremental).  Both
   runs must complete the identical path set with byte-identical test
   cases; the headline number is the solver-wall ratio, backed by the
   realized reuse rate (queries that popped a live instance back to a
   shared prefix instead of rebuilding). *)
let solver_exp () =
  section "Solver: fresh vs incremental (assumption-stack clause reuse)";
  let img =
    Guest.build
      ~driver:("nulldrv", S2e_guest.Drivers_src.nulldrv)
      ~workload:("pbench", parallel_workload)
      ()
  in
  let make_engine () =
    let config = Executor.default_config () in
    config.consistency <- Consistency.LC;
    let engine = Executor.create ~config () in
    Guest.load_into_engine engine img;
    Executor.set_unit engine [ "pbench" ];
    engine
  in
  let run mode =
    Solver.set_default_mode mode;
    let t0 = Unix.gettimeofday () in
    let r =
      Parallel.explore ~jobs:1
        ~limits:
          {
            Executor.max_instructions = None;
            max_seconds = Some (budget *. 4.);
            max_completed = None;
          }
        ~make_engine
        ~boot:(fun eng -> Executor.boot eng ~entry:img.entry ())
        ()
    in
    let wall = Unix.gettimeofday () -. t0 in
    let cases =
      List.map Parallel.test_case r.completed |> List.sort compare
    in
    (r, wall, cases)
  in
  let fresh, fresh_wall, fresh_cases = run Solver.Fresh in
  let inc, inc_wall, inc_cases = run Solver.Incremental in
  Solver.set_default_mode Solver.Incremental;
  let fs = fresh.Parallel.solver_stats and is = inc.Parallel.solver_stats in
  let ratio =
    if fs.Solver.total_time > 0. then is.Solver.total_time /. fs.Solver.total_time
    else 1.
  in
  let reuse_rate =
    if is.Solver.sat_queries > 0 then
      float_of_int (is.Solver.inc_hits + is.Solver.inc_partials)
      /. float_of_int is.Solver.sat_queries
    else 0.
  in
  let kept_rate =
    if is.Solver.sat_learned > 0 then
      float_of_int is.Solver.sat_kept /. float_of_int is.Solver.sat_learned
    else 0.
  in
  let cases_equal = fresh_cases = inc_cases in
  Printf.printf "%-14s %8s %10s %12s %8s\n" "mode" "paths" "wall (s)"
    "solver (s)" "queries";
  Printf.printf "%-14s %8d %10.2f %12.3f %8d\n" "fresh"
    fresh.Parallel.stats.Executor.states_completed fresh_wall
    fs.Solver.total_time fs.Solver.queries;
  Printf.printf "%-14s %8d %10.2f %12.3f %8d\n" "incremental"
    inc.Parallel.stats.Executor.states_completed inc_wall is.Solver.total_time
    is.Solver.queries;
  Printf.printf
    "solver wall ratio (inc/fresh): %.3f; reuse: %d full + %d partial of %d \
     SAT-core queries (%.1f%%)\n"
    ratio is.Solver.inc_hits is.Solver.inc_partials is.Solver.sat_queries
    (100. *. reuse_rate);
  Printf.printf "learned clauses: %d learned, %d kept live (%.1f%%)\n"
    is.Solver.sat_learned is.Solver.sat_kept (100. *. kept_rate);
  if not cases_equal then
    Printf.printf "WARNING: incremental case set diverged from fresh\n";
  Bench_json.emit ~name:"solver" ~artifact:"solver"
    [
      ("paths", Bench_json.Int inc.Parallel.stats.Executor.states_completed);
      ("fresh_solver_s", Bench_json.Float (fs.Solver.total_time, 3));
      ("inc_solver_s", Bench_json.Float (is.Solver.total_time, 3));
      ("inc_over_fresh", Bench_json.Float (ratio, 3));
      ("reuse_rate", Bench_json.Float (reuse_rate, 4));
      ("inc_hits", Bench_json.Int is.Solver.inc_hits);
      ("inc_partials", Bench_json.Int is.Solver.inc_partials);
      ("learned", Bench_json.Int is.Solver.sat_learned);
      ("learned_kept", Bench_json.Int is.Solver.sat_kept);
      ("kept_rate", Bench_json.Float (kept_rate, 4));
      ("cases_equal", Bench_json.Bool cases_equal);
    ];
  Printf.printf
    "\nThe ratio is the tentpole number: feasibility siblings and case-tree\n\
     expansions land on live instances whose learned clauses carry over,\n\
     so the SAT core re-derives nothing it already proved on the shared\n\
     constraint prefix.\n"

(* ---------------------------------------------------------------- *)
(* Tracing overhead: the same multi-path run with and without the      *)
(* event tracer, checked byte-identical                                *)
(* ---------------------------------------------------------------- *)

let trace_overhead () =
  section "Tracing: event-tracer overhead on a multi-path run";
  let module Obs = S2e_obs in
  let img =
    Guest.build
      ~driver:("nulldrv", S2e_guest.Drivers_src.nulldrv)
      ~workload:("pbench", parallel_workload)
      ()
  in
  let make_engine () =
    let config = Executor.default_config () in
    config.consistency <- Consistency.LC;
    let engine = Executor.create ~config () in
    Guest.load_into_engine engine img;
    Executor.set_unit engine [ "pbench" ];
    engine
  in
  (* One full serial drain of the fork tree; the run is deterministic, so
     the only difference between the two passes is the tracer. *)
  let run () =
    Obs.Metrics.reset ();
    Obs.Trace.reset ();
    let t0 = Unix.gettimeofday () in
    let r =
      Parallel.explore ~jobs:1
        ~limits:
          {
            Executor.max_instructions = None;
            max_seconds = Some (budget *. 4.);
            max_completed = None;
          }
        ~make_engine
        ~boot:(fun eng -> Executor.boot eng ~entry:img.entry ())
        ()
    in
    let wall = Unix.gettimeofday () -. t0 in
    (* The paths-and-cases identity of the run, sorted: tracing must not
       change what was explored, byte for byte. *)
    let cases =
      List.sort compare
        (List.map
           (fun (s : State.t) ->
             State.report_string s ^ " | "
             ^ Parallel.test_case_to_string (Parallel.test_case s))
           r.completed)
    in
    (r.stats.Executor.states_completed, wall, cases)
  in
  Obs.Trace.set_enabled false;
  let base_paths, base_wall, base_cases = run () in
  Obs.Trace.set_enabled true;
  let traced_paths, traced_wall, traced_cases = run () in
  let events, dropped = Obs.Trace.drain () in
  Obs.Trace.set_enabled false;
  Obs.Trace.reset ();
  let overhead =
    if base_wall > 0. then (traced_wall -. base_wall) /. base_wall else 0.
  in
  let cases_equal = base_cases = traced_cases && base_paths = traced_paths in
  Printf.printf "untraced: %d paths in %.3fs\n" base_paths base_wall;
  Printf.printf "traced:   %d paths in %.3fs (%d events, %d dropped)\n"
    traced_paths traced_wall (List.length events) dropped;
  Printf.printf "overhead: %+.1f%%; path/case sets %s\n" (100. *. overhead)
    (if cases_equal then "identical" else "DIFFERENT (BUG)");
  Bench_json.emit ~name:"trace"
    [
      ("paths", Bench_json.Int traced_paths);
      ("base_wall_s", Bench_json.Float (base_wall, 3));
      ("traced_wall_s", Bench_json.Float (traced_wall, 3));
      ("overhead_frac", Bench_json.Float (overhead, 4));
      ("events", Bench_json.Int (List.length events));
      ("dropped", Bench_json.Int dropped);
      ("cases_equal", Bench_json.Bool cases_equal);
    ];
  Printf.printf
    "\nThe emit path is one array store into the domain's own ring, so\n\
     tracing stays within a few percent of the untraced run while the\n\
     exploration itself (paths and test cases) is unchanged.\n"

(* ---------------------------------------------------------------- *)
(* Distributed exploration: multi-process fork-server throughput      *)
(* ---------------------------------------------------------------- *)

(* Same solver-heavy workload as the `parallel` experiment, distributed
   across worker processes instead of domains.  Runs with a fixed
   per-run wall budget and compares drained-path throughput.  Listed
   FIRST in [experiments]: Fork-mode workers must be spawned before any
   experiment has spun up OCaml domains. *)
let dist () =
  section "Distributed exploration: multi-process fork-server throughput";
  let module Coordinator = S2e_dist.Coordinator in
  let img =
    Guest.build
      ~driver:("nulldrv", S2e_guest.Drivers_src.nulldrv)
      ~workload:("pbench", parallel_workload)
      ()
  in
  let make_engine () =
    let config = Executor.default_config () in
    config.consistency <- Consistency.LC;
    let engine = Executor.create ~config () in
    Guest.load_into_engine engine img;
    Executor.set_unit engine [ "pbench" ];
    engine
  in
  let seconds = Float.min 2.0 (budget /. 5.) in
  let run procs =
    Coordinator.explore ~procs
      ~limits:
        {
          Executor.max_instructions = None;
          max_seconds = Some seconds;
          max_completed = None;
        }
      ~spawn:(Coordinator.Fork { jobs = 1; slice = 0.02; make_engine })
      ~make_engine
      ~boot:(fun eng -> Executor.boot eng ~entry:img.entry ())
      ()
  in
  Printf.printf "per-run budget: %.1f s, workload: pbench (solver-heavy)\n"
    seconds;
  Printf.printf "%-8s %10s %8s %10s %8s %9s %10s\n" "procs" "wall (s)" "paths"
    "paths/s" "steals" "requeues" "speedup";
  let rate (r : Coordinator.result) =
    if r.wall_seconds > 0. then
      float_of_int r.stats.Executor.states_completed /. r.wall_seconds
    else 0.
  in
  let serial = run 1 in
  let report (r : Coordinator.result) =
    Printf.printf "%-8d %10.2f %8d %10.1f %8d %9d %9.2fx\n%!" r.procs
      r.wall_seconds r.stats.Executor.states_completed (rate r) r.steals
      r.requeues
      (if rate serial > 0. then rate r /. rate serial else 0.)
  in
  report serial;
  let results = List.map (fun procs -> let r = run procs in report r; r) [ 2; 4 ] in
  List.iter
    (fun (r : Coordinator.result) ->
      Bench_json.emit ~name:"dist_explore"
        [
          ("procs", Bench_json.Int r.procs);
          ("serial_paths_per_s", Bench_json.Float (rate serial, 3));
          ("paths_per_s", Bench_json.Float (rate r, 3));
          ( "speedup",
            Bench_json.Float
              ((if rate serial > 0. then rate r /. rate serial else 0.), 3) );
          ("paths", Bench_json.Int r.stats.Executor.states_completed);
          ("steals", Bench_json.Int r.steals);
          ("requeues", Bench_json.Int r.requeues);
          ("restarts", Bench_json.Int r.restarts);
          ("unexplored", Bench_json.Int r.unexplored);
        ])
    results;
  (* Elastic TCP leg: the same workload through the cluster transport
     (coordinator listener + 2 TCP workers), pricing the lease/rejoin
     machinery and the delta snapshot encoding against the shared
     baseline. *)
  let fork_tcp_worker ~port =
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 ->
        for fd = 3 to 255 do
          try Unix.close (S2e_dist.Proto.fd_of_int fd)
          with Unix.Unix_error _ -> ()
        done;
        (try
           S2e_dist.Worker.serve_tcp ~jobs:1 ~slice:0.02 ~heartbeat:0.05
             ~host:"127.0.0.1" ~port ~make_engine ()
         with _ -> ());
        Unix._exit 0
    | pid -> pid
  in
  (* The registry is process-cumulative; zero it so the TCP leg's delta
     counters are exactly this leg's. *)
  S2e_obs.Metrics.reset ();
  let lfd = S2e_dist.Proto.listen ~host:"127.0.0.1" ~port:0 in
  let port = S2e_dist.Proto.bound_port lfd in
  let pids = [ fork_tcp_worker ~port; fork_tcp_worker ~port ] in
  let rt =
    Coordinator.explore ~procs:0 ~listener:lfd
      ~limits:
        {
          Executor.max_instructions = None;
          max_seconds = Some seconds;
          max_completed = None;
        }
      ~spawn:(Coordinator.Fork { jobs = 1; slice = 0.02; make_engine })
      ~make_engine
      ~boot:(fun eng -> Executor.boot eng ~entry:img.entry ())
      ()
  in
  (try Unix.close lfd with Unix.Unix_error _ -> ());
  List.iter
    (fun pid ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
    pids;
  let delta_ratio =
    if rt.Coordinator.delta_full_bytes > 0 then
      float_of_int rt.Coordinator.delta_bytes
      /. float_of_int rt.Coordinator.delta_full_bytes
    else 1.0
  in
  Printf.printf
    "tcp x2   %10.2f %8d %10.1f %8d %9d %9.2fx\n%!" rt.wall_seconds
    rt.stats.Executor.states_completed (rate rt) rt.steals rt.requeues
    (if rate serial > 0. then rate rt /. rate serial else 0.);
  Printf.printf
    "tcp leg: %d joins, %d reconnects, %d solo paths; snapshots %d B as \
     deltas of %d B full (ratio %.2f)\n%!"
    rt.Coordinator.joins rt.Coordinator.reconnects rt.Coordinator.solo_paths
    rt.Coordinator.delta_bytes rt.Coordinator.delta_full_bytes delta_ratio;
  Bench_json.emit ~name:"dist_explore"
    [
      ("procs", Bench_json.Int 0);
      ("tcp_workers", Bench_json.Int 2);
      ("serial_paths_per_s", Bench_json.Float (rate serial, 3));
      ("paths_per_s", Bench_json.Float (rate rt, 3));
      ( "speedup",
        Bench_json.Float
          ((if rate serial > 0. then rate rt /. rate serial else 0.), 3) );
      ("paths", Bench_json.Int rt.stats.Executor.states_completed);
      ("joins", Bench_json.Int rt.Coordinator.joins);
      ("reconnects", Bench_json.Int rt.Coordinator.reconnects);
      ("solo_paths", Bench_json.Int rt.Coordinator.solo_paths);
      ("unexplored", Bench_json.Int rt.unexplored);
      ("delta_bytes", Bench_json.Int rt.Coordinator.delta_bytes);
      ("delta_full_bytes", Bench_json.Int rt.Coordinator.delta_full_bytes);
      ("snapshot_delta_ratio", Bench_json.Float (delta_ratio, 4));
    ];
  Printf.printf
    "\nEach worker process rebuilds the engine stack and decodes serialized\n\
     fork-point states; on a single core the processes time-slice and\n\
     throughput stays ~1x (this machine reports %d core(s)).\n"
    (Domain.recommended_domain_count ())

(* ---------------------------------------------------------------- *)
(* Chaos: resilience under an armed fault plan                        *)
(* ---------------------------------------------------------------- *)

(* The dist workload re-run with the fault injector armed at every
   boundary (guest hardware, solver, transport): what the chaos costs in
   drained-path throughput, and how fast the coordinator turns a crashed
   worker back into a working one.  Fork-mode like `dist`, so it is
   listed right after it, before any experiment spins up domains. *)
let chaos () =
  section "Chaos: distributed exploration under an armed fault plan";
  let module Coordinator = S2e_dist.Coordinator in
  let module Fault = S2e_fault.Fault in
  let module Obs = S2e_obs in
  let img =
    Guest.build
      ~driver:("nulldrv", S2e_guest.Drivers_src.nulldrv)
      ~workload:("pbench", parallel_workload)
      ()
  in
  let make_engine () =
    let config = Executor.default_config () in
    config.consistency <- Consistency.LC;
    let engine = Executor.create ~config () in
    Guest.load_into_engine engine img;
    Executor.set_unit engine [ "pbench" ];
    engine
  in
  let seconds = Float.min 2.0 (budget /. 5.) in
  let run ?plan () =
    (match plan with
    | None -> Fault.disarm ()
    | Some p -> (
        match Fault.parse_plan p with
        | Ok pl -> Fault.install ~seed:7 pl
        | Error msg -> failwith msg));
    (* Crashed -> Respawned latency: the coordinator's recovery time for
       a dead worker (backoff included). *)
    let crashed = ref [] in
    let recoveries = ref [] in
    let on_event = function
      | Coordinator.Crashed _ -> crashed := Unix.gettimeofday () :: !crashed
      | Coordinator.Respawned _ -> (
          match !crashed with
          | t :: rest ->
              crashed := rest;
              recoveries := (Unix.gettimeofday () -. t) :: !recoveries
          | [] -> ())
      | _ -> ()
    in
    let r =
      Coordinator.explore ~procs:2 ~heartbeat_timeout:1.0 ~on_event
        ~limits:
          {
            Executor.max_instructions = None;
            max_seconds = Some seconds;
            max_completed = None;
          }
        ~spawn:(Coordinator.Fork { jobs = 1; slice = 0.02; make_engine })
        ~make_engine
        ~boot:(fun eng -> Executor.boot eng ~entry:img.entry ())
        ()
    in
    Fault.disarm ();
    (r, !recoveries)
  in
  let rate (r : Coordinator.result) =
    if r.wall_seconds > 0. then
      float_of_int r.stats.Executor.states_completed /. r.wall_seconds
    else 0.
  in
  let plan =
    (* The pbench run exchanges only a handful of frames (workers finish
       their item internally and report one Result), so the corruption
       probability is high to guarantee the NAK/retransmit path is
       actually exercised. *)
    "dev.read=err:0.02,dma=drop:0.01,irq=spurious:0.01,solver=unknown:0.02,\
     solver=latency:0.05,proto=corrupt:0.6,proto=delay:0.3"
  in
  Printf.printf "per-run budget: %.1f s, plan: %s\n" seconds plan;
  let base, _ = run () in
  let faulted, recoveries = run ~plan () in
  let injected =
    List.fold_left
      (fun acc (name, v) ->
        match v with
        | Obs.Metrics.Int n
          when String.length name > 6 && String.sub name 0 6 = "fault." ->
            acc + n
        | _ -> acc)
      0 faulted.Coordinator.obs
  in
  let mean_recovery_ms =
    match recoveries with
    | [] -> 0.
    | l -> 1000. *. List.fold_left ( +. ) 0. l /. float_of_int (List.length l)
  in
  Printf.printf "%-10s %10s %10s %9s %9s %9s\n" "run" "paths/s" "paths"
    "requeues" "restarts" "injected";
  Printf.printf "%-10s %10.1f %10d %9d %9d %9d\n" "baseline" (rate base)
    base.stats.Executor.states_completed base.Coordinator.requeues
    base.Coordinator.restarts 0;
  Printf.printf "%-10s %10.1f %10d %9d %9d %9d\n%!" "faulted" (rate faulted)
    faulted.stats.Executor.states_completed faulted.Coordinator.requeues
    faulted.Coordinator.restarts injected;
  Printf.printf
    "transport: %d naks, %d retransmits; degradations: %d; abandoned: %d\n"
    faulted.Coordinator.naks faulted.Coordinator.retransmits
    faulted.stats.Executor.degradations
    (List.length faulted.Coordinator.abandoned);
  if recoveries <> [] then
    Printf.printf "crash recovery: %d respawns, mean %.0f ms\n"
      (List.length recoveries) mean_recovery_ms;
  Bench_json.emit ~name:"chaos"
    [
      ("base_paths_per_s", Bench_json.Float (rate base, 3));
      ("paths_per_s", Bench_json.Float (rate faulted, 3));
      ( "throughput_frac",
        Bench_json.Float
          ((if rate base > 0. then rate faulted /. rate base else 0.), 3) );
      ("injected", Bench_json.Int injected);
      ("naks", Bench_json.Int faulted.Coordinator.naks);
      ("retransmits", Bench_json.Int faulted.Coordinator.retransmits);
      ("degradations", Bench_json.Int faulted.stats.Executor.degradations);
      ("requeues", Bench_json.Int faulted.Coordinator.requeues);
      ("restarts", Bench_json.Int faulted.Coordinator.restarts);
      ("abandoned", Bench_json.Int (List.length faulted.Coordinator.abandoned));
      ("mean_recovery_ms", Bench_json.Float (mean_recovery_ms, 1));
    ];
  Printf.printf
    "\nThe faulted run trades throughput for the recovery machinery\n\
     visibly doing its job: NAK/retransmit on corrupt frames,\n\
     requeue/respawn on silent workers, degradation instead of hangs on\n\
     solver faults -- with no silently lost work (abandoned items, if\n\
     any, are reported above).\n"

(* ---------------------------------------------------------------- *)
(* Expression interning: O(1) identity vs structural reference        *)
(* ---------------------------------------------------------------- *)

(* Microbenchmark of the hash-consing layer: equality, hash and
   independent-constraint slicing against reference implementations that
   recompute structurally — what every consumer paid before interning.
   Then an end-to-end serial run of the parallel workload to put the
   solver-side effect on record. *)
let expr_intern () =
  section "Expression interning: cached identity vs structural recomputation";
  (* Deterministic tree pool over a shared variable set; depth is high
     enough that tree walks dominate the reference timings, mirroring the
     address-arithmetic chains the DBT emits. *)
  let rng = Random.State.make [| 0x51E; 7; 2026 |] in
  let vars = Array.init 8 (fun i -> Expr.fresh_var (Printf.sprintf "b%d" i)) in
  let rec gen depth =
    if depth = 0 then
      if Random.State.bool rng then vars.(Random.State.int rng 8)
      else Expr.const (Random.State.int64 rng 1024L)
    else
      match Random.State.int rng 5 with
      | 0 -> Expr.add (gen (depth - 1)) (gen (depth - 1))
      | 1 -> Expr.bxor (gen (depth - 1)) (gen (depth - 1))
      | 2 -> Expr.band (gen (depth - 1)) (Expr.bor (gen (depth - 1)) (gen (depth - 1)))
      | 3 -> Expr.mul (gen (depth - 1)) (vars.(Random.State.int rng 8))
      | _ -> Expr.sub (gen (depth - 1)) (gen (depth - 1))
  in
  let pool = Array.init 64 (fun _ -> gen 8) in
  (* A second generation from the same seed: structurally identical trees,
     which interning makes physically identical. *)
  let rng2 = Random.State.make [| 0x51E; 7; 2026 |] in
  let vars2 = vars in
  let rec gen2 depth =
    if depth = 0 then
      if Random.State.bool rng2 then vars2.(Random.State.int rng2 8)
      else Expr.const (Random.State.int64 rng2 1024L)
    else
      match Random.State.int rng2 5 with
      | 0 -> Expr.add (gen2 (depth - 1)) (gen2 (depth - 1))
      | 1 -> Expr.bxor (gen2 (depth - 1)) (gen2 (depth - 1))
      | 2 -> Expr.band (gen2 (depth - 1)) (Expr.bor (gen2 (depth - 1)) (gen2 (depth - 1)))
      | 3 -> Expr.mul (gen2 (depth - 1)) (vars2.(Random.State.int rng2 8))
      | _ -> Expr.sub (gen2 (depth - 1)) (gen2 (depth - 1))
  in
  let pool2 = Array.init 64 (fun _ -> gen2 8) in
  (* Reference implementations: what the pre-interning representation
     computed on every use. *)
  let rec ref_equal (a : Expr.t) (b : Expr.t) =
    match a, b with
    | Const a, Const b -> a.value = b.value && a.width = b.width
    | Var a, Var b -> a.id = b.id
    | Unop a, Unop b -> a.op = b.op && ref_equal a.arg b.arg
    | Binop a, Binop b ->
        a.op = b.op && ref_equal a.lhs b.lhs && ref_equal a.rhs b.rhs
    | Cmp a, Cmp b -> a.op = b.op && ref_equal a.lhs b.lhs && ref_equal a.rhs b.rhs
    | Ite a, Ite b ->
        ref_equal a.cond b.cond && ref_equal a.then_ b.then_
        && ref_equal a.else_ b.else_
    | Extract a, Extract b -> a.hi = b.hi && a.lo = b.lo && ref_equal a.arg b.arg
    | Concat a, Concat b -> ref_equal a.high b.high && ref_equal a.low b.low
    | Zext a, Zext b -> a.width = b.width && ref_equal a.arg b.arg
    | Sext a, Sext b -> a.width = b.width && ref_equal a.arg b.arg
    | _, _ -> false
  in
  let ref_vars e =
    Expr.fold_vars (fun acc id _ _ -> Expr.Int_set.add id acc) Expr.Int_set.empty e
  in
  let ref_slice ~seed_vars constraints =
    let remaining = ref (List.map (fun c -> (c, ref_vars c)) constraints) in
    let relevant = ref [] in
    let frontier = ref seed_vars in
    let changed = ref true in
    while !changed do
      changed := false;
      let keep, rest =
        List.partition
          (fun (_, vs) -> not (Expr.Int_set.disjoint vs !frontier))
          !remaining
      in
      if keep <> [] then begin
        changed := true;
        List.iter
          (fun (c, vs) ->
            relevant := c :: !relevant;
            frontier := Expr.Int_set.union !frontier vs)
          keep;
        remaining := rest
      end
    done;
    !relevant
  in
  (* Per-op timing with adaptive repetition (cheap ops need millions of
     iterations for a stable clock read). *)
  let per_op f =
    let rec go reps =
      let t0 = Unix.gettimeofday () in
      for _ = 1 to reps do f () done;
      let dt = Unix.gettimeofday () -. t0 in
      if dt < 0.2 && reps < 50_000_000 then go (reps * 4) else dt /. float_of_int reps
    in
    ignore (go 64);
    go 256
  in
  let n = Array.length pool in
  let idx = ref 0 in
  let next () = let i = !idx in idx := (i + 1) mod n; i in
  let sink = ref false and isink = ref 0 in
  let t_equal_cached =
    per_op (fun () -> let i = next () in sink := Expr.equal pool.(i) pool2.(i))
  in
  let t_equal_ref =
    per_op (fun () -> let i = next () in sink := ref_equal pool.(i) pool2.(i))
  in
  let t_hash_cached = per_op (fun () -> isink := Expr.hash pool.(next ())) in
  let t_hash_ref = per_op (fun () -> isink := Hashtbl.hash pool.(next ())) in
  (* Slicing: chained constraints (each shares a variable with the next)
     so the transitive closure does real work. *)
  let constraints =
    List.init 48 (fun i ->
        Expr.ult
          (Expr.add pool.(i mod n) vars.(i mod 8))
          (Expr.add pool.((i + 1) mod n) vars.((i + 1) mod 8)))
  in
  let seed_vars = Expr.vars pool.(0) in
  let lsink = ref [] in
  let t_slice_cached =
    per_op (fun () -> lsink := Solver.slice ~seed_vars constraints)
  in
  let t_slice_ref =
    per_op (fun () -> lsink := ref_slice ~seed_vars constraints)
  in
  ignore !sink; ignore !isink; ignore !lsink;
  let safe_div a b = if b > 0. then a /. b else 0. in
  let s_equal = safe_div t_equal_ref t_equal_cached in
  let s_hash = safe_div t_hash_ref t_hash_cached in
  let s_slice = safe_div t_slice_ref t_slice_cached in
  Printf.printf "%-10s %14s %14s %9s\n" "op" "interned (ns)" "reference (ns)"
    "speedup";
  let row name c r s =
    Printf.printf "%-10s %14.1f %14.1f %8.1fx\n" name (c *. 1e9) (r *. 1e9) s
  in
  row "equal" t_equal_cached t_equal_ref s_equal;
  row "hash" t_hash_cached t_hash_ref s_hash;
  row "slice" t_slice_cached t_slice_ref s_slice;
  (* End-to-end: the breakdown workload run serially; solver time is where
     identity-keyed caches and O(1) slicing land. *)
  let img =
    Guest.build
      ~driver:("nulldrv", S2e_guest.Drivers_src.nulldrv)
      ~workload:("pbench", parallel_workload)
      ()
  in
  let make_engine () =
    let config = Executor.default_config () in
    config.consistency <- Consistency.LC;
    let engine = Executor.create ~config () in
    Guest.load_into_engine engine img;
    Executor.set_unit engine [ "pbench" ];
    engine
  in
  let t0 = Unix.gettimeofday () in
  let r =
    Parallel.explore ~jobs:1
      ~limits:
        {
          Executor.max_instructions = None;
          max_seconds = Some (budget *. 4.);
          max_completed = None;
        }
      ~make_engine
      ~boot:(fun eng -> Executor.boot eng ~entry:img.entry ())
      ()
  in
  let wall = Unix.gettimeofday () -. t0 in
  let st = r.solver_stats in
  Printf.printf
    "end-to-end (serial pbench): %d paths, %.2fs wall, %.2fs solver, %d queries\n"
    r.stats.Executor.states_completed wall st.Solver.total_time
    st.Solver.queries;
  Bench_json.emit ~name:"expr_intern" ~artifact:"expr"
    [
      ("equal_speedup", Bench_json.Float (s_equal, 2));
      ("hash_speedup", Bench_json.Float (s_hash, 2));
      ("slice_speedup", Bench_json.Float (s_slice, 2));
      ("equal_ns", Bench_json.Float (t_equal_cached *. 1e9, 1));
      ("hash_ns", Bench_json.Float (t_hash_cached *. 1e9, 1));
      ("slice_ns", Bench_json.Float (t_slice_cached *. 1e9, 1));
      ("e2e_paths", Bench_json.Int r.stats.Executor.states_completed);
      ("e2e_wall_s", Bench_json.Float (wall, 3));
      ("e2e_solver_s", Bench_json.Float (st.Solver.total_time, 3));
      ("e2e_queries", Bench_json.Int st.Solver.queries);
    ];
  Printf.printf
    "\nInterned equality is a pointer comparison and slicing reads the\n\
     per-node cached variable sets, so both are independent of tree\n\
     depth; the reference columns walk the structure the way the\n\
     pre-interning representation had to on every query.\n"

(* ---------------------------------------------------------------- *)
(* Executable ISA oracle: differential-testing throughput            *)
(* ---------------------------------------------------------------- *)

let oracle () =
  section "ORACLE: reference interpreter vs DBT differential throughput";
  let module O = S2e_oracle.Oracle in
  let module I = S2e_oracle.Interp in
  let module G = S2e_oracle.Gen in
  let module D = S2e_oracle.Dbt_exec in
  let n = int_of_float (2000. *. max 1. (budget /. 12.)) in
  (* Component throughputs over one shared generated case set. *)
  let g = G.create ~seed:1 in
  let cases = List.init n (fun _ -> G.next g) in
  let it = I.create () in
  let t0 = Unix.gettimeofday () in
  List.iter (fun (c : G.case) -> ignore (I.run it c.G.c_pre)) cases;
  let t_interp = Unix.gettimeofday () -. t0 in
  let dx = D.create () in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun (c : G.case) ->
      D.flush dx;
      ignore (D.run dx c.G.c_pre))
    cases;
  let t_dbt = Unix.gettimeofday () -. t0 in
  (* End-to-end differential run, corpus replay included when the seed
     manifest is checked out. *)
  let corpus =
    if Sys.file_exists "examples/oracle/urlparse.corpus" then
      snd (S2e_oracle.Corpus.load "examples/oracle/urlparse.corpus")
    else []
  in
  let t0 = Unix.gettimeofday () in
  let r =
    O.run ~seed:2 ~count:n ~corpus
      ~repro_dir:(Filename.get_temp_dir_name ())
      ()
  in
  let t_diff = Unix.gettimeofday () -. t0 in
  let per t = float_of_int n /. t in
  let diff_rate = float_of_int r.O.r_blocks /. t_diff in
  Printf.printf "cases: %d generated, %d corpus block(s) replayed\n" n
    (List.length corpus);
  Printf.printf "reference interpreter: %8.0f blocks/s\n" (per t_interp);
  Printf.printf "dbt fast path (cold):  %8.0f blocks/s\n" (per t_dbt);
  Printf.printf
    "differential harness:  %8.0f blocks/s (ref + cold dbt + hot dbt per \
     case)\n"
    diff_rate;
  Printf.printf "divergences: %d\n" (List.length r.O.r_divergences);
  Bench_json.emit ~name:"oracle"
    [
      ("blocks", Bench_json.Int r.O.r_blocks);
      ("corpus_blocks", Bench_json.Int (List.length corpus));
      ("interp_blocks_per_s", Bench_json.Float (per t_interp, 0));
      ("dbt_blocks_per_s", Bench_json.Float (per t_dbt, 0));
      ("diff_blocks_per_s", Bench_json.Float (diff_rate, 0));
      ("divergences", Bench_json.Int (List.length r.O.r_divergences));
    ]

let experiments =
  [
    ("expr", expr_intern);
    ("oracle", oracle);
    ("dist", dist);
    ("chaos", chaos);
    ("table4", table4);
    ("table5", table5);
    ("fig6", fig6);
    ("table6", table6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9", fig9);
    ("ddt", ddt);
    ("profs-url", profs_url);
    ("profs-ping", profs_ping);
    ("overhead", overhead);
    ("pagesize", pagesize);
    ("ablate", ablate);
    ("parallel", parallel);
    ("merge", merge);
    ("breakdown", breakdown);
    ("solver", solver_exp);
    ("trace", trace_overhead);
  ]

let () =
  let args =
    match Array.to_list Sys.argv with _ :: (_ :: _ as rest) -> rest | _ -> [ "all" ]
  in
  let requested =
    if List.mem "all" args then List.map fst experiments else args
  in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown experiment %S; available: %s all\n" name
            (String.concat " " (List.map fst experiments));
          exit 1)
    requested
