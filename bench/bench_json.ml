(** Single writer for the machine-readable `BENCH {...}` lines the
    experiments emit — previously each experiment hand-rolled its own
    [Printf], so field quoting and float precision drifted per site and
    nothing marked schema revisions.

    Shared schema: ["name"] first (CI greps [^BENCH {"name":"..."]), then
    ["version"] — bump {!schema_version} when a field's meaning changes,
    so downstream scrapers can refuse lines they no longer understand —
    then the experiment's own fields in emission order.

    The committed seed artifacts at the repository root
    ([BENCH_expr.json], [BENCH_merge.json]) hold the same JSON object,
    bare.  They are regenerated — never hand-edited — by running the
    experiment with [S2E_BENCH_ARTIFACTS=1] in the environment. *)

let schema_version = 1

type v =
  | Int of int
  | Float of float * int  (** value, printed decimals *)
  | Bool of bool
  | Str of string

let render_value = function
  | Int i -> string_of_int i
  | Float (f, decimals) -> Printf.sprintf "%.*f" decimals f
  | Bool b -> string_of_bool b
  | Str s -> Printf.sprintf "%S" s

let json ~name fields =
  let field (k, v) = Printf.sprintf "\"%s\":%s" k (render_value v) in
  Printf.sprintf "{%s}"
    (String.concat ","
       (field ("name", Str name)
       :: field ("version", Int schema_version)
       :: List.map field fields))

(** Print the experiment's [BENCH {...}] line on stdout; with
    [S2E_BENCH_ARTIFACTS] set and [artifact] given, also (re)write the
    committed seed file [BENCH_<artifact>.json] at the current
    directory's root (bench runs from the repository root). *)
let emit ?artifact ~name fields =
  let j = json ~name fields in
  Printf.printf "BENCH %s\n" j;
  match artifact with
  | Some base when Sys.getenv_opt "S2E_BENCH_ARTIFACTS" <> None ->
      let path = Printf.sprintf "BENCH_%s.json" base in
      let oc = open_out path in
      output_string oc j;
      output_char oc '\n';
      close_out oc
  | _ -> ()
